#include "serve/snapshot.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>

#include "embed/io.h"
#include "util/byte_io.h"
#include "util/crc32.h"
#include "util/string_util.h"

namespace tdmatch {
namespace serve {

namespace {

// Integer appends and the bounds-checked body reader live in
// util/byte_io — the same primitives serialize the index sections
// (serve/ivf_index.cc).
using util::AppendLengthPrefixed;
using util::AppendU32;
using util::AppendU64;
using Cursor = util::ByteCursor;

constexpr char kMagic[4] = {'T', 'D', 'M', 'S'};
constexpr uint32_t kEndianMarker = 0x01020304u;
/// magic + version + endian marker.
constexpr size_t kHeaderBytes = 12;
/// trailing CRC.
constexpr size_t kFooterBytes = 4;

util::Status AppendString(std::string* out, const std::string& s) {
  return AppendLengthPrefixed(out, s);
}

}  // namespace

const std::string* Snapshot::Section(const std::string& tag) const {
  for (const auto& s : sections) {
    if (s.first == tag) return &s.second;
  }
  return nullptr;
}

const std::string& SnapshotMeta::Find(const std::string& key) const {
  static const std::string kEmpty;
  for (const auto& kv : extra) {
    if (kv.first == key) return kv.second;
  }
  return kEmpty;
}

util::Status ValidateSnapshotGeometry(const std::string& path, uint32_t dim,
                                      uint64_t count, size_t remaining) {
  if (dim == 0 && count > 0) {
    return util::Status::InvalidArgument(path + ": zero dim with vectors");
  }
  if (dim > static_cast<uint32_t>(INT32_MAX)) {
    return util::Status::InvalidArgument(util::StrFormat(
        "%s: declared dim %u exceeds the supported maximum", path.c_str(),
        dim));
  }
  // A hostile header can declare a geometry whose payload byte count
  // rows * dim * sizeof(float) wraps narrower arithmetic (already at
  // rows * dim >= 2^30 for 32-bit math). Do the multiplication once in
  // overflow-checked 64-bit math and reject explicitly, so no later size
  // computation — allocation, cursor advance, span construction — ever
  // sees a wrapped value.
  const uint64_t row_bytes = static_cast<uint64_t>(dim) * sizeof(float);
  if (row_bytes > 0 && count > UINT64_MAX / row_bytes) {
    return util::Status::InvalidArgument(util::StrFormat(
        "%s: payload size of %llu vectors x %u dims overflows 64-bit byte "
        "arithmetic",
        path.c_str(), static_cast<unsigned long long>(count), dim));
  }
  // A valid CRC proves the bytes are intact, not that the writer was
  // SnapshotIo — validate declared counts against the bytes actually
  // present before sizing any allocation from them (every entry needs at
  // least a 4-byte label length plus its dim floats).
  const uint64_t min_entry_bytes = sizeof(uint32_t) + row_bytes;
  if (count > remaining / min_entry_bytes) {
    return util::Status::InvalidArgument(util::StrFormat(
        "%s: declared %llu vectors cannot fit in %zu remaining bytes",
        path.c_str(), static_cast<unsigned long long>(count), remaining));
  }
  return util::Status::OK();
}

util::Status SnapshotIo::Write(const embed::EmbeddingTable& table,
                               const SnapshotMeta& meta,
                               const std::string& path) {
  return Write(table, meta, {}, path);
}

util::Status SnapshotIo::Write(
    const embed::EmbeddingTable& table, const SnapshotMeta& meta,
    const std::vector<std::pair<std::string, std::string>>& sections,
    const std::string& path) {
  const std::vector<std::string> labels = table.Labels();
  const size_t dim = static_cast<size_t>(table.dim());

  // The reserved "_pad" metadata pair sizes the pre-payload bytes to a
  // multiple of 4 so the f32 payload is 4-byte aligned in the file, and
  // therefore in any page-aligned mmap of it (serve::SnapshotView reads
  // rows in place). Callers never see it: Write strips stale copies and
  // Read drops it after parsing, so meta round-trips unchanged.
  std::vector<const std::pair<std::string, std::string>*> extra;
  extra.reserve(meta.extra.size());
  size_t prepay = 4 + 8 + (4 + meta.scenario.size()) + 4;
  for (const auto& kv : meta.extra) {
    if (kv.first == kPadKey) continue;
    extra.push_back(&kv);
    prepay += 8 + kv.first.size() + kv.second.size();
  }
  for (const auto& label : labels) prepay += 4 + label.size();
  // The header (12), the pad pair's own fixed bytes (4 + 4 + len("_pad")
  // = 12), and every length prefix are multiples of 4, so only the string
  // bytes determine the residue.
  const size_t pad_len = (4 - prepay % 4) % 4;

  std::string body;
  // Labels dominate; 16 bytes/label plus the raw float payload is a close
  // upper-bound guess that avoids re-allocation churn.
  body.reserve(labels.size() * (dim * sizeof(float) + 16) + 256);
  AppendU32(&body, static_cast<uint32_t>(table.dim()));
  AppendU64(&body, labels.size());
  TDM_RETURN_NOT_OK(AppendString(&body, meta.scenario));
  if (extra.size() >= UINT32_MAX) {
    return util::Status::InvalidArgument("too many metadata pairs");
  }
  AppendU32(&body, static_cast<uint32_t>(extra.size() + 1));
  for (const auto* kv : extra) {
    TDM_RETURN_NOT_OK(AppendString(&body, kv->first));
    TDM_RETURN_NOT_OK(AppendString(&body, kv->second));
  }
  TDM_RETURN_NOT_OK(AppendString(&body, kPadKey));
  TDM_RETURN_NOT_OK(AppendString(&body, std::string(pad_len, ' ')));
  for (const auto& label : labels) {
    TDM_RETURN_NOT_OK(AppendString(&body, label));
  }
  for (const auto& label : labels) {
    const std::vector<float>* vec = table.Get(label);
    body.append(reinterpret_cast<const char*>(vec->data()),
                vec->size() * sizeof(float));
  }

  // Sections ride after the payload (so the payload-alignment pad math
  // above is untouched) and only in version-2 files: a section-free write
  // stays byte-identical to what version-1 builds produced.
  if (!sections.empty()) {
    if (sections.size() >= UINT32_MAX) {
      return util::Status::InvalidArgument("too many snapshot sections");
    }
    AppendU32(&body, static_cast<uint32_t>(sections.size()));
    for (const auto& sec : sections) {
      TDM_RETURN_NOT_OK(AppendString(&body, sec.first));
      AppendU64(&body, sec.second.size());
      body.append(sec.second);
    }
  }
  const uint32_t version = sections.empty() ? kVersion : kVersionSections;

  // Write to a temp file and rename over `path`: readers — including a
  // serving process that has the old snapshot mmap'ed (SnapshotView) —
  // never observe a half-written or in-place-truncated file. The rename
  // is atomic on POSIX; the old inode lives on until its last mapping
  // drops.
  const std::string tmp_path =
      util::StrFormat("%s.tmp.%d", path.c_str(), ::getpid());
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) return util::Status::IOError("cannot open " + tmp_path);
    out.write(kMagic, sizeof(kMagic));
    const uint32_t endian = kEndianMarker;
    out.write(reinterpret_cast<const char*>(&version), sizeof(version));
    out.write(reinterpret_cast<const char*>(&endian), sizeof(endian));
    out.write(body.data(), static_cast<std::streamsize>(body.size()));
    const uint32_t crc = util::Crc32(body.data(), body.size());
    out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
    if (!out) {
      std::remove(tmp_path.c_str());
      return util::Status::IOError("write failed for " + tmp_path);
    }
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return util::Status::IOError(
        util::StrFormat("cannot rename %s over %s", tmp_path.c_str(),
                        path.c_str()));
  }
  return util::Status::OK();
}

util::Result<Snapshot> SnapshotIo::Read(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return util::Status::IOError("cannot open " + path);
  const std::streamoff file_size = in.tellg();
  if (file_size < static_cast<std::streamoff>(kHeaderBytes + kFooterBytes)) {
    return util::Status::IOError(util::StrFormat(
        "%s: not a snapshot (%lld bytes, smaller than header + CRC)",
        path.c_str(), static_cast<long long>(file_size)));
  }
  std::string buf(static_cast<size_t>(file_size), '\0');
  in.seekg(0);
  if (!in.read(&buf[0], file_size)) {
    return util::Status::IOError("read failed for " + path);
  }

  if (std::memcmp(buf.data(), kMagic, sizeof(kMagic)) != 0) {
    return util::Status::InvalidArgument(
        path + ": bad magic (not a TDmatch snapshot)");
  }
  uint32_t version = 0;
  uint32_t endian = 0;
  std::memcpy(&version, buf.data() + 4, sizeof(version));
  std::memcpy(&endian, buf.data() + 8, sizeof(endian));
  if (endian != kEndianMarker) {
    return util::Status::InvalidArgument(util::StrFormat(
        "%s: endianness marker 0x%08x != 0x%08x — snapshot was written on a "
        "machine with different byte order",
        path.c_str(), endian, kEndianMarker));
  }
  if (version != kVersion && version != kVersionSections) {
    return util::Status::InvalidArgument(util::StrFormat(
        "%s: snapshot version %u, this build reads %u and %u", path.c_str(),
        version, kVersion, kVersionSections));
  }

  const char* body = buf.data() + kHeaderBytes;
  const size_t body_size = buf.size() - kHeaderBytes - kFooterBytes;
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, buf.data() + buf.size() - kFooterBytes,
              sizeof(stored_crc));
  const uint32_t actual_crc = util::Crc32(body, body_size);
  if (stored_crc != actual_crc) {
    return util::Status::IOError(util::StrFormat(
        "%s: CRC mismatch (stored 0x%08x, computed 0x%08x) — snapshot is "
        "corrupted or truncated",
        path.c_str(), stored_crc, actual_crc));
  }

  Cursor cur(body, body_size);
  uint32_t dim = 0;
  uint64_t count = 0;
  TDM_RETURN_NOT_OK(cur.ReadU32(&dim));
  TDM_RETURN_NOT_OK(cur.ReadU64(&count));
  TDM_RETURN_NOT_OK(
      ValidateSnapshotGeometry(path, dim, count, cur.Remaining()));

  Snapshot snap;
  TDM_RETURN_NOT_OK(cur.ReadString(&snap.meta.scenario));
  uint32_t num_extra = 0;
  TDM_RETURN_NOT_OK(cur.ReadU32(&num_extra));
  if (num_extra > cur.Remaining() / (2 * sizeof(uint32_t))) {
    return util::Status::InvalidArgument(util::StrFormat(
        "%s: declared %u metadata pairs cannot fit in %zu remaining bytes",
        path.c_str(), num_extra, cur.Remaining()));
  }
  snap.meta.extra.reserve(num_extra);
  for (uint32_t i = 0; i < num_extra; ++i) {
    std::string key, value;
    TDM_RETURN_NOT_OK(cur.ReadString(&key));
    TDM_RETURN_NOT_OK(cur.ReadString(&value));
    // The writer's internal alignment pad is not part of the caller's
    // metadata; dropping it keeps Write → Read → Write round trips stable.
    if (key == kPadKey) continue;
    snap.meta.extra.emplace_back(std::move(key), std::move(value));
  }

  std::vector<std::string> labels(count);
  for (uint64_t i = 0; i < count; ++i) {
    TDM_RETURN_NOT_OK(cur.ReadString(&labels[i]));
  }
  snap.table = embed::EmbeddingTable(static_cast<int>(dim));
  std::vector<float> vec(dim);
  for (uint64_t i = 0; i < count; ++i) {
    TDM_RETURN_NOT_OK(cur.ReadFloats(vec.data(), dim));
    snap.table.Put(labels[i], vec);
  }

  if (version >= kVersionSections) {
    uint32_t num_sections = 0;
    TDM_RETURN_NOT_OK(cur.ReadU32(&num_sections));
    // Each section needs at least its tag length prefix + byte length.
    if (num_sections > cur.Remaining() / (sizeof(uint32_t) + sizeof(uint64_t))) {
      return util::Status::InvalidArgument(util::StrFormat(
          "%s: declared %u sections cannot fit in %zu remaining bytes",
          path.c_str(), num_sections, cur.Remaining()));
    }
    snap.sections.reserve(num_sections);
    for (uint32_t i = 0; i < num_sections; ++i) {
      std::string tag;
      TDM_RETURN_NOT_OK(cur.ReadString(&tag));
      uint64_t len = 0;
      TDM_RETURN_NOT_OK(cur.ReadU64(&len));
      if (len > cur.Remaining()) {
        return util::Status::InvalidArgument(util::StrFormat(
            "%s: section \"%s\" declares %llu bytes with %zu left",
            path.c_str(), tag.c_str(), static_cast<unsigned long long>(len),
            cur.Remaining()));
      }
      std::string bytes(static_cast<size_t>(len), '\0');
      TDM_RETURN_NOT_OK(cur.ReadBytes(bytes.data(), bytes.size()));
      snap.sections.emplace_back(std::move(tag), std::move(bytes));
    }
  }

  if (cur.Remaining() != 0) {
    return util::Status::InvalidArgument(util::StrFormat(
        "%s: %zu trailing bytes after the vector payload", path.c_str(),
        cur.Remaining()));
  }
  return snap;
}

util::Status SnapshotIo::ConvertTextToSnapshot(
    const std::string& text_path, const SnapshotMeta& meta,
    const std::string& snapshot_path) {
  TDM_ASSIGN_OR_RETURN(embed::EmbeddingTable table,
                       embed::EmbeddingIo::Load(text_path));
  return Write(table, meta, snapshot_path);
}

util::Status SnapshotIo::ConvertSnapshotToText(
    const std::string& snapshot_path, const std::string& text_path) {
  TDM_ASSIGN_OR_RETURN(Snapshot snap, Read(snapshot_path));
  return embed::EmbeddingIo::Save(snap.table, text_path);
}

}  // namespace serve
}  // namespace tdmatch
