#ifndef TDMATCH_SERVE_SHARDED_ENGINE_H_
#define TDMATCH_SERVE_SHARDED_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "serve/query_engine.h"
#include "serve/sharder.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace tdmatch {
namespace serve {

struct ShardedEngineOptions {
  /// Shard count N. 1 ⇒ no partitioning: the single shard is a plain
  /// QueryEngine built through the full-featured path (snapshot "ivfpq"
  /// section adoption included) and every call delegates to it.
  size_t shards = 1;
  /// Ring construction (virtual node count, seed).
  SharderOptions sharder;
  /// Per-shard engine build options. `engine.threads` sizes the scatter
  /// pool (and, for shards == 1, the delegate's batch pool); shard
  /// engines themselves are built single-threaded so a query fans out
  /// across shards, not across nested pools.
  QueryEngineOptions engine;
};

/// \brief Scatter-gather serving over N QueryEngine shards.
///
/// The snapshot candidate set is partitioned by consistent hashing on the
/// candidate doc label (Sharder), each shard builds its own exact (and
/// IVF) index over its slice, and a query is scattered to every shard on
/// the shared ThreadPool, then the per-shard top-k heaps are merged by
/// (score desc, global candidate id asc) — the same strict total order
/// TopK::Select ranks by. Because the partition preserves global candidate
/// order inside each shard and every global top-k member is by restriction
/// inside its own shard's top-k, **exact-mode results are bit-identical to
/// the unsharded engine for every shard count** (scores included; locked
/// by tests across N ∈ {1,2,4,8}).
///
/// Approx mode is the documented exception: each shard trains k-means over
/// its own slice, so the probed cells — and therefore the candidate sets —
/// differ from the global IVF index. Results are still deterministic for a
/// fixed (snapshot, N, options) and recall-gated by tests, just not
/// bit-equal across shard counts.
///
/// Immutable after Build; all query APIs are const and safe for concurrent
/// callers (the scatter pool serializes nothing but the task queue).
class ShardedQueryEngine {
 public:
  /// Copying path: candidates are the snapshot labels with `prefix`.
  static util::Result<ShardedQueryEngine> Build(
      Snapshot snapshot, const std::string& prefix,
      ShardedEngineOptions options = {});

  /// mmap path: shard matrices are gathered straight from the mapped
  /// payload; the engine shares ownership of the view.
  static util::Result<ShardedQueryEngine> BuildFromView(
      std::shared_ptr<const SnapshotView> view, const std::string& prefix,
      ShardedEngineOptions options = {});

  /// Per-call stage timings, filled when a caller passes a non-null
  /// out-param (tracing). Purely observational — never consulted by the
  /// merge, so results are identical with or without it. In delegate
  /// mode the whole engine call counts as scatter and merge is 0.
  struct QueryTiming {
    double scatter_ms = 0.0;  // fan-out + per-shard top-k
    double merge_ms = 0.0;    // global-id mapping + re-rank + truncate
  };

  /// Top-k for the embedding stored under `label`. `nprobe` > 0 overrides
  /// each shard's IVF probe count for this query (approx mode only).
  util::Result<std::vector<ScoredMatch>> Query(
      const std::string& label, size_t k = 0,
      SearchMode mode = SearchMode::kApprox, size_t nprobe = 0,
      QueryTiming* timing = nullptr) const;

  /// Top-k for a caller-provided vector.
  util::Result<std::vector<ScoredMatch>> QueryVector(
      const std::vector<float>& vec, size_t k = 0,
      SearchMode mode = SearchMode::kApprox, size_t nprobe = 0,
      QueryTiming* timing = nullptr) const;

  /// Blocking-aware filtered query (always exact); each shard masks its
  /// own slice of the allowed set.
  util::Result<std::vector<ScoredMatch>> QueryFiltered(
      const std::string& label, const std::vector<std::string>& allowed,
      size_t k = 0, QueryTiming* timing = nullptr) const;

  /// Batch lookup: result i answers labels[i]. Parallelism is over the
  /// queries (shards run inline inside each worker) — never nested
  /// blocking submits on one pool.
  std::vector<util::Result<std::vector<ScoredMatch>>> QueryBatch(
      const std::vector<std::string>& labels, size_t k = 0,
      SearchMode mode = SearchMode::kApprox, size_t nprobe = 0) const;

  const SnapshotMeta& meta() const;
  int dim() const;
  size_t num_candidates() const;
  bool has_ivf() const;
  /// Configured shard count N (shards with zero candidates build no
  /// engine; see active_shards()).
  size_t num_shards() const { return options_.shards; }
  /// Shards that actually own candidates.
  size_t active_shards() const { return shards_.size(); }
  /// Candidate count of active shard i (diagnostics / tests). The
  /// delegate owns every candidate and no id-translation table.
  size_t shard_size(size_t i) const {
    return delegate() ? shards_[i].num_candidates()
                      : shard_global_ids_[i].size();
  }
  /// Largest IVF nlist across shards — the ceiling for per-query nprobe
  /// overrides. 0 without IVF.
  size_t max_nprobe() const { return max_nprobe_; }
  const ShardedEngineOptions& options() const { return options_; }
  const Sharder& sharder() const { return sharder_; }

 private:
  explicit ShardedQueryEngine(ShardedEngineOptions options)
      : options_(options),
        sharder_(options.shards < 1 ? 1 : options.shards, options.sharder) {}

  bool delegate() const { return options_.shards <= 1; }
  /// Wraps a full-featured single engine (the shards == 1 path).
  void AdoptDelegate(QueryEngine engine);
  /// Partitions `labels` (global candidate order) and builds one engine
  /// per non-empty shard; `gather` materializes the normalized matrix for
  /// a list of global candidate ids (table rows or mapped payload rows).
  util::Status BuildShards(
      const std::vector<std::string>& labels,
      const std::function<VectorMatrix(const std::vector<size_t>&)>& gather);
  /// The raw (unnormalized) embedding stored under `label`, from the view
  /// or the loaded table. Null when unknown.
  const float* LookupVector(const std::string& label,
                            std::vector<float>* scratch) const;
  /// Fans `vec` out to every shard (on the pool when `use_pool`), merges
  /// by (score desc, global id asc), truncates to k.
  util::Result<std::vector<ScoredMatch>> ScatterVector(
      const std::vector<float>& vec, size_t k, SearchMode mode,
      size_t nprobe, const std::vector<std::string>* allowed, bool use_pool,
      QueryTiming* timing = nullptr) const;

  ShardedEngineOptions options_;
  Sharder sharder_;
  SnapshotMeta meta_;
  int dim_ = 0;
  size_t num_candidates_ = 0;
  size_t max_nprobe_ = 0;
  /// Copy path keeps the loaded snapshot for label lookups; view path
  /// keeps the mapping. Both empty in delegate mode (the single shard
  /// owns them).
  Snapshot snapshot_;
  std::shared_ptr<const SnapshotView> view_;
  /// Non-empty shards, in shard-id order.
  std::vector<QueryEngine> shards_;
  /// shard_global_ids_[i][local_id] = global candidate id.
  std::vector<std::vector<int32_t>> shard_global_ids_;
  /// Scatter workers; null when options_.engine.threads <= 1.
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace serve
}  // namespace tdmatch

#endif  // TDMATCH_SERVE_SHARDED_ENGINE_H_
