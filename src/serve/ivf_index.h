#ifndef TDMATCH_SERVE_IVF_INDEX_H_
#define TDMATCH_SERVE_IVF_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/index.h"

namespace tdmatch {
namespace serve {

/// Build/search parameters of the IVF index.
struct IvfOptions {
  /// Number of k-means cells. 0 = auto: ceil(sqrt(n)), clamped to [1, n].
  size_t nlist = 0;
  /// Cells probed per query — the recall/latency knob. Higher nprobe scans
  /// more of the corpus: nprobe == nlist degenerates to an exact scan.
  /// Measure the trade-off with MeasureRecallAtK (bench/serve_qps sweeps
  /// it).
  size_t nprobe = 4;
  /// Lloyd iterations for the coarse quantizer.
  size_t kmeans_iters = 8;
  /// Seed for the k-means init (util::Rng); fixed seed ⇒ identical index.
  uint64_t seed = 42;
  /// Threads for k-means training (util::ThreadPool::ParallelFor). The
  /// trained index is identical for any thread count: assignments are a
  /// pure map and centroid updates accumulate sequentially in id order.
  size_t threads = 4;
};

/// \brief Inverted-file ANN index (the FAISS "IVF-flat" recipe): a k-means
/// coarse quantizer partitions the normalized candidate vectors into
/// `nlist` cells; a query scores the `nprobe` nearest cells' members only,
/// then exact cosine re-ranks the gathered candidates through the bounded
/// heap of match::TopK.
///
/// Inverted lists are stored flat CSR-style (offsets + one contiguous id
/// array) with the member vectors copied into list order, so a probe scans
/// one contiguous stripe of memory. Expected work per query is
/// O(nlist · dim) for the quantizer plus O((nprobe/nlist) · n · dim) for
/// the scans — at nlist = √n this is O(√n · dim) against the exact scan's
/// O(n · dim).
class IvfIndex : public Index {
 public:
  /// Builds the index (trains k-means, fills the inverted lists).
  IvfIndex(std::shared_ptr<const VectorMatrix> data, IvfOptions options);

  std::string name() const override { return "ivf"; }
  size_t size() const override { return data_->size(); }
  int dim() const override { return data_->dim(); }

  /// Note: `allowed` filters within the probed cells only — allowed
  /// candidates living in unprobed cells are not considered. For small
  /// allowed sets use ExactIndex (QueryEngine::QueryFiltered does).
  std::vector<match::Match> Search(
      const float* query, size_t k,
      const std::vector<char>* allowed = nullptr) const override;

  /// The recall knob; clamped to [1, nlist]. Safe between queries, not
  /// concurrently with them.
  void set_nprobe(size_t nprobe);
  size_t nprobe() const { return nprobe_; }
  size_t nlist() const { return nlist_; }

  /// Members of cell `list` (diagnostics / tests).
  size_t ListSize(size_t list) const {
    return list_offsets_[list + 1] - list_offsets_[list];
  }

 private:
  void Train();

  std::shared_ptr<const VectorMatrix> data_;
  IvfOptions options_;
  size_t nlist_ = 0;
  size_t nprobe_ = 1;
  /// nlist × dim, L2-normalized (spherical k-means).
  std::vector<float> centroids_;
  /// CSR inverted lists: members of cell c are positions
  /// [list_offsets_[c], list_offsets_[c+1]) of list_ids_/list_vectors_.
  std::vector<size_t> list_offsets_;
  std::vector<int32_t> list_ids_;
  /// Member vectors copied into list order (n × dim): each probe scans a
  /// contiguous stripe instead of hopping through the original matrix.
  std::vector<float> list_vectors_;
};

}  // namespace serve
}  // namespace tdmatch

#endif  // TDMATCH_SERVE_IVF_INDEX_H_
