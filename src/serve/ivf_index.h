#ifndef TDMATCH_SERVE_IVF_INDEX_H_
#define TDMATCH_SERVE_IVF_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "serve/index.h"
#include "util/result.h"

namespace tdmatch {
namespace serve {

/// Build/search parameters of the IVF index.
struct IvfOptions {
  /// Number of k-means cells. 0 = auto: ceil(sqrt(n)), clamped to [1, n].
  size_t nlist = 0;
  /// Cells probed per query — the recall/latency knob. Higher nprobe scans
  /// more of the corpus: nprobe == nlist degenerates to an exact scan.
  /// Measure the trade-off with MeasureRecallAtK (bench/serve_qps sweeps
  /// it).
  size_t nprobe = 4;
  /// Lloyd iterations for the coarse quantizer.
  size_t kmeans_iters = 8;
  /// Seed for the k-means init (util::Rng); fixed seed ⇒ identical index.
  uint64_t seed = 42;
  /// Threads for k-means training (util::ThreadPool::ParallelFor). The
  /// trained index is identical for any thread count: assignments are a
  /// pure map and centroid updates accumulate sequentially in id order.
  size_t threads = 4;

  /// --- product quantization (the memory knob; 0 = off, IVF-flat) -------
  /// Subquantizer count m: the vector is split into m contiguous
  /// dim/m-sized subspaces, each encoded as the id of the nearest of 256
  /// per-subspace codebook centroids. The inverted lists then store m
  /// bytes per member instead of dim * 4 — a dim*4/m-fold compression of
  /// the list payload (amortizing the fixed 256 * dim * 4-byte codebook).
  /// Must divide dim. Queries scan the probed lists with a u8 ADC
  /// lookup-table pass and exact-re-rank the top candidates against the
  /// full-precision matrix, so recall degrades gracefully (see pq_rerank).
  size_t pq_m = 0;
  /// Lloyd iterations per subquantizer codebook.
  size_t pq_iters = 12;
  /// How many of the best ADC-scored candidates get the exact re-rank
  /// (clamped to >= k per query). The PQ recall/latency knob.
  size_t pq_rerank = 64;
};

/// \brief Inverted-file ANN index (the FAISS "IVF-flat" / "IVF-PQ"
/// recipes): a k-means coarse quantizer partitions the normalized
/// candidate vectors into `nlist` cells; a query scores the `nprobe`
/// nearest cells' members only.
///
/// Flat mode stores the member vectors copied into list order and scores
/// every probed member with an exact cosine (the "re-rank" is exact by
/// construction). PQ mode (pq_m > 0) stores 8-bit product-quantization
/// codes instead — m bytes per member — scans them with an ADC
/// lookup-table kernel (simd::AdcScan), and exact-re-ranks only the top
/// pq_rerank ADC candidates against the shared full-precision matrix.
///
/// Inverted lists are stored flat CSR-style (offsets + one contiguous id
/// array) with the member payload (vectors or codes) in list order, so a
/// probe scans one contiguous stripe of memory. All dot products route
/// through the runtime-dispatched simd kernel layer.
class IvfIndex : public Index {
 public:
  /// Builds the index (trains k-means + optional PQ codebooks, fills the
  /// inverted lists).
  IvfIndex(std::shared_ptr<const VectorMatrix> data, IvfOptions options);

  std::string name() const override { return pq_enabled() ? "ivf_pq" : "ivf"; }
  size_t size() const override { return data_->size(); }
  int dim() const override { return data_->dim(); }

  /// Bytes owned by the index structure itself (centroids, CSR lists,
  /// codes/codebook or copied vectors). Excludes the full-precision
  /// matrix, which is shared serving state (the exact index and the PQ
  /// re-rank read it; in the mmap serving path it is built once per
  /// snapshot for all indexes).
  size_t MemoryBytes() const override;

  /// Bytes of the per-member list payload only: n * dim * 4 for flat,
  /// n * m codes + the 256 * dim * 4 codebook for PQ. The compression
  /// the pq_m knob buys is flat ListBytes / PQ ListBytes.
  size_t ListBytes() const;

  /// Note: `allowed` filters within the probed cells only — allowed
  /// candidates living in unprobed cells are not considered. For small
  /// allowed sets use ExactIndex (QueryEngine::QueryFiltered does).
  std::vector<match::Match> Search(
      const float* query, size_t k,
      const std::vector<char>* allowed = nullptr) const override;

  /// Search with an explicit probe count (clamped to [1, nlist]) instead
  /// of the stored nprobe. Const and thread-safe: this is the per-query
  /// recall/latency override the serving auto-tuner drives, usable while
  /// other threads query concurrently (unlike set_nprobe).
  std::vector<match::Match> SearchWithNprobe(
      const float* query, size_t k, size_t nprobe,
      const std::vector<char>* allowed = nullptr) const;

  /// The recall knob; clamped to [1, nlist]. Safe between queries, not
  /// concurrently with them.
  void set_nprobe(size_t nprobe);
  size_t nprobe() const { return nprobe_; }
  size_t nlist() const { return nlist_; }
  bool pq_enabled() const { return options_.pq_m > 0; }
  const IvfOptions& options() const { return options_; }

  /// Members of cell `list` (diagnostics / tests).
  size_t ListSize(size_t list) const {
    return list_offsets_[list + 1] - list_offsets_[list];
  }

  /// Serializes the trained structure (centroids, CSR lists, PQ codebook
  /// and codes or flat vectors) into the bounds-checked wire format that
  /// Deserialize reads — the payload of a snapshot "ivfpq" section.
  /// `labels_crc` fingerprints the candidate set the index was built over
  /// (CRC-32 of the NUL-joined candidate labels); Deserialize refuses a
  /// section whose fingerprint does not match the candidates the engine
  /// resolved, so a stale or foreign section can never serve wrong ids.
  std::string Serialize(uint32_t labels_crc) const;

  /// Rebuilds an index from Serialize output over the same candidate
  /// matrix. Every count, offset, and id is validated against `data`
  /// before use (hostile sections are rejected with a descriptive error,
  /// never a crash). `nprobe`/`pq_rerank`/`threads` come from `options`;
  /// the trained structure comes from the bytes.
  static util::Result<std::unique_ptr<IvfIndex>> Deserialize(
      std::string_view bytes, std::shared_ptr<const VectorMatrix> data,
      uint32_t labels_crc, const IvfOptions& options);

 private:
  explicit IvfIndex(std::shared_ptr<const VectorMatrix> data)
      : data_(std::move(data)) {}

  void Train();
  /// Trains the per-subspace codebooks and fills `codes` (n × pq_m, in
  /// candidate-id order) from the trainer's final assignments.
  void TrainPq(std::vector<uint8_t>* codes);
  std::vector<match::Match> SearchFlat(
      const float* query, size_t k, const std::vector<match::Match>& probes,
      const std::vector<char>* allowed) const;
  std::vector<match::Match> SearchPq(
      const float* query, size_t k, const std::vector<match::Match>& probes,
      const std::vector<char>* allowed) const;

  std::shared_ptr<const VectorMatrix> data_;
  IvfOptions options_;
  size_t nlist_ = 0;
  size_t nprobe_ = 1;
  /// nlist × dim, L2-normalized (spherical k-means).
  std::vector<float> centroids_;
  /// CSR inverted lists: members of cell c are positions
  /// [list_offsets_[c], list_offsets_[c+1]) of list_ids_ and of the list
  /// payload (list_vectors_ or list_codes_).
  std::vector<size_t> list_offsets_;
  std::vector<int32_t> list_ids_;
  /// Flat mode: member vectors copied into list order (n × dim): each
  /// probe scans a contiguous stripe instead of hopping through the
  /// original matrix. Empty in PQ mode.
  std::vector<float> list_vectors_;
  /// PQ mode: pq_m × 256 × (dim/pq_m) codebook and n × pq_m codes in
  /// list order. Empty in flat mode.
  std::vector<float> codebook_;
  std::vector<uint8_t> list_codes_;
};

}  // namespace serve
}  // namespace tdmatch

#endif  // TDMATCH_SERVE_IVF_INDEX_H_
