#ifndef TDMATCH_SERVE_QUERY_ENGINE_H_
#define TDMATCH_SERVE_QUERY_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/index.h"
#include "serve/ivf_index.h"
#include "serve/mmap_snapshot.h"
#include "serve/snapshot.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace tdmatch {
namespace serve {

/// Which index a query runs against.
enum class SearchMode {
  kApprox,  ///< IVF when built, otherwise falls back to exact
  kExact,   ///< always the brute-force reference
};

struct QueryEngineOptions {
  /// Threads for batch execution (and IVF k-means training).
  size_t threads = 4;
  /// k used when a query passes k = 0.
  size_t default_k = 5;
  /// Build the IVF index next to the exact one. Off ⇒ every query is an
  /// exact scan (small candidate sets where ANN overhead isn't worth it).
  bool build_ivf = true;
  /// Adopt a pre-trained index from the snapshot's "ivfpq" section
  /// instead of re-training k-means at build time, when one is present
  /// and its candidate fingerprint matches (see IvfIndex::Serialize). Any
  /// mismatch or validation failure falls back to training — a bad
  /// section can cost startup time, never correctness.
  bool use_snapshot_index = true;
  IvfOptions ivf;
};

/// One scored answer: the candidate's snapshot label, its dense id in the
/// engine's candidate set, and the cosine score.
struct ScoredMatch {
  std::string label;
  int32_t candidate = -1;
  double score = 0.0;
};

/// \brief The online query layer: a loaded snapshot + ANN/exact indexes +
/// batched, thread-sharded lookups.
///
/// Built once from a snapshot (offline artifact), then immutable: every
/// query API is const and safe to call from concurrent callers. Queries
/// address embeddings by snapshot label (e.g. the graph's metadata-doc
/// labels `__D0:i__`) or bring their own vector; candidates are the subset
/// of snapshot labels the engine was built over (for TDmatch serving, the
/// second corpus' doc nodes `__D1:*__`).
///
/// Batch execution shards the query list into contiguous chunks on a
/// persistent ThreadPool (spawned once at Build, reused by every batch —
/// no per-call thread spawn on the hot path); results are written to
/// per-query slots, so the output is identical for any thread count.
/// Multiple callers may run QueryBatch concurrently; each batch tracks
/// its own completion.
class QueryEngine {
 public:
  /// Builds the engine over an explicit candidate subset. Labels missing
  /// from the snapshot table or duplicated are an error.
  static util::Result<QueryEngine> Build(Snapshot snapshot,
                                         std::vector<std::string> candidates,
                                         QueryEngineOptions options = {});

  /// Convenience: candidates are all snapshot labels starting with
  /// `prefix`, in snapshot order (the serving convention stores the
  /// candidate prefix in the snapshot metadata under "candidate_prefix").
  static util::Result<QueryEngine> BuildForPrefix(
      Snapshot snapshot, const std::string& prefix,
      QueryEngineOptions options = {});

  /// Builds over a memory-mapped snapshot view instead of a loaded
  /// Snapshot: candidate vectors are gathered straight from the mapped f32
  /// payload into the (normalizing) index matrix, label lookups resolve
  /// against the mapping, and no EmbeddingTable copy of the payload is
  /// ever materialized — the mmap serving path. The engine shares
  /// ownership of the view; several engines can serve one mapping.
  /// Results are bit-identical to the copying Build over the same file.
  static util::Result<QueryEngine> BuildFromView(
      std::shared_ptr<const SnapshotView> view, const std::string& prefix,
      QueryEngineOptions options = {});

  /// Builds directly over an already-gathered (normalized) candidate
  /// matrix and its labels — the shard-engine path: ShardedQueryEngine
  /// partitions one snapshot's candidate set and hands each shard its
  /// slice. The engine owns no snapshot payload (label-addressed Query
  /// only resolves candidate labels via QueryVector at the sharded layer);
  /// snapshot "ivfpq" sections are not consulted (they fingerprint the
  /// full candidate set, not a partition).
  static util::Result<QueryEngine> BuildOverMatrix(
      std::shared_ptr<const VectorMatrix> matrix,
      std::vector<std::string> candidate_labels, SnapshotMeta meta,
      QueryEngineOptions options = {});

  /// Top-k for the embedding stored under `label` (k = 0 ⇒ default_k).
  /// `nprobe` > 0 overrides the IVF probe count for this query only
  /// (ignored in exact mode / without an IVF index) — the serving
  /// latency-budget auto-tuner's hook.
  util::Result<std::vector<ScoredMatch>> Query(
      const std::string& label, size_t k = 0,
      SearchMode mode = SearchMode::kApprox, size_t nprobe = 0) const;

  /// Top-k for a caller-provided vector (must be table dim).
  util::Result<std::vector<ScoredMatch>> QueryVector(
      const std::vector<float>& vec, size_t k = 0,
      SearchMode mode = SearchMode::kApprox, size_t nprobe = 0) const;

  /// Blocking-aware filtered query: only candidates whose label appears in
  /// `allowed` can be returned (labels not in the candidate set are
  /// ignored). This is the hook for an upstream blocker (match::
  /// TokenBlocker) that prunes the candidate space per query. Filtered
  /// queries always run on the exact index: an IVF probe could miss a
  /// small allowed set entirely, and a blocked scan is cheap by
  /// construction.
  util::Result<std::vector<ScoredMatch>> QueryFiltered(
      const std::string& label, const std::vector<std::string>& allowed,
      size_t k = 0) const;

  /// QueryFiltered with a caller-provided vector instead of a stored
  /// label — what a shard scatter uses (the sharded layer resolves the
  /// label once, every shard filters its own slice). Always exact.
  util::Result<std::vector<ScoredMatch>> QueryVectorFiltered(
      const std::vector<float>& vec, const std::vector<std::string>& allowed,
      size_t k = 0) const;

  /// Batch lookup: result i answers labels[i]. Per-query failures (unknown
  /// label) are per-slot errors, not a batch failure. Sharded across
  /// `options().threads` workers.
  std::vector<util::Result<std::vector<ScoredMatch>>> QueryBatch(
      const std::vector<std::string>& labels, size_t k = 0,
      SearchMode mode = SearchMode::kApprox, size_t nprobe = 0) const;

  const SnapshotMeta& meta() const { return snapshot_.meta; }
  /// The loaded embedding table. Empty (dim only) for view-backed engines,
  /// whose vectors live in the mapping — see view().
  const embed::EmbeddingTable& table() const { return snapshot_.table; }
  /// Non-null when built via BuildFromView.
  const std::shared_ptr<const SnapshotView>& view() const { return view_; }
  size_t num_candidates() const { return candidate_labels_.size(); }
  const std::vector<std::string>& candidate_labels() const {
    return candidate_labels_;
  }
  bool has_ivf() const { return ivf_ != nullptr; }
  const ExactIndex& exact_index() const { return *exact_; }
  /// Null when build_ivf was off.
  IvfIndex* ivf_index() { return ivf_.get(); }
  const IvfIndex* ivf_index() const { return ivf_.get(); }
  const QueryEngineOptions& options() const { return options_; }

  /// Snapshot section tag carrying a serialized IVF/PQ index.
  static constexpr char kIvfSectionTag[] = "ivfpq";

  /// CRC-32 fingerprint of the engine's candidate labels (NUL-joined, in
  /// candidate-id order) — ties a serialized index section to the exact
  /// candidate set it was built over.
  uint32_t candidate_labels_crc() const;

  /// True when the IVF index was adopted from a snapshot "ivfpq" section
  /// rather than trained at build time.
  bool ivf_from_snapshot() const { return ivf_from_snapshot_; }

  /// Serialized "ivfpq" section payload for this engine's IVF index
  /// (stamped with candidate_labels_crc()), or an empty string when no
  /// IVF index was built. Attach it via the sections overload of
  /// SnapshotIo::Write so later engines skip k-means training.
  std::string SerializeIvfSection() const;

 private:
  QueryEngine() = default;

  const Index& IndexFor(SearchMode mode) const;
  std::vector<ScoredMatch> ToScored(
      const std::vector<match::Match>& matches) const;
  /// Builds the allowed-label mask for filtered queries; returns the
  /// number of distinct candidates allowed.
  size_t BuildMask(const std::vector<std::string>& allowed,
                   std::vector<char>* mask) const;
  /// Indexes candidate_index_/candidate_labels_, builds the exact/IVF
  /// indexes over matrix_ and the batch pool — the tail shared by every
  /// Build flavor.
  util::Status FinishBuild(QueryEngineOptions options);
  /// The embedding stored under `label`: a pointer into the table or the
  /// mapped view (copy-free on both hot paths; `scratch` is only written
  /// for an unaligned mapping). Null when the label is unknown.
  const float* LookupVector(const std::string& label,
                            std::vector<float>* scratch) const;
  /// Normalizes a copy of `vec` (table dim) and searches `index`. A
  /// positive `nprobe` overrides the probe count when `index` is the IVF
  /// index (ignored otherwise).
  std::vector<ScoredMatch> SearchNormalized(
      const Index& index, const float* vec, size_t k,
      const std::vector<char>* allowed = nullptr, size_t nprobe = 0) const;

  Snapshot snapshot_;
  std::shared_ptr<const SnapshotView> view_;
  QueryEngineOptions options_;
  std::vector<std::string> candidate_labels_;
  /// label → dense candidate id, for filtered queries.
  std::unordered_map<std::string, int32_t> candidate_index_;
  std::shared_ptr<const VectorMatrix> matrix_;
  std::unique_ptr<ExactIndex> exact_;
  std::unique_ptr<IvfIndex> ivf_;
  bool ivf_from_snapshot_ = false;
  /// Batch workers; null when options_.threads <= 1 (batches run inline).
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace serve
}  // namespace tdmatch

#endif  // TDMATCH_SERVE_QUERY_ENGINE_H_
