#include "serve/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "serve/index.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/simd/kernels.h"
#include "util/thread_pool.h"

namespace tdmatch {
namespace serve {

namespace {

/// Assigns every point in [begin, end) to its best-scoring centroid.
/// Points are walked in 8-wide tiles so one pass over each centroid row
/// feeds eight dot accumulators (simd::Dot8); the sub-8 tail scores
/// per-point. Scores: dot(x, c) minus `bias[c]` (zero for spherical,
/// ||c||^2/2 for Euclidean); ties break to the lowest centroid id.
void AssignRange(const KMeansRowFn& row, size_t begin, size_t end, size_t d,
                 const std::vector<float>& centroids,
                 const std::vector<float>& bias, size_t k,
                 int32_t* assign) {
  size_t i = begin;
  for (; i + 8 <= end; i += 8) {
    const float* rows[8];
    for (int q = 0; q < 8; ++q) rows[q] = row(i + static_cast<size_t>(q));
    float best[8];
    int32_t best_c[8];
    for (int q = 0; q < 8; ++q) {
      best[q] = -std::numeric_limits<float>::infinity();
      best_c[q] = 0;
    }
    float dots[8];
    for (size_t c = 0; c < k; ++c) {
      simd::Dot8(rows, centroids.data() + c * d, d, dots);
      const float b = bias[c];
      for (int q = 0; q < 8; ++q) {
        const float score = dots[q] - b;
        if (score > best[q]) {
          best[q] = score;
          best_c[q] = static_cast<int32_t>(c);
        }
      }
    }
    for (int q = 0; q < 8; ++q) assign[i + static_cast<size_t>(q)] = best_c[q];
  }
  for (; i < end; ++i) {
    const float* v = row(i);
    float best = -std::numeric_limits<float>::infinity();
    int32_t best_c = 0;
    for (size_t c = 0; c < k; ++c) {
      const float score = simd::Dot(v, centroids.data() + c * d, d) - bias[c];
      if (score > best) {
        best = score;
        best_c = static_cast<int32_t>(c);
      }
    }
    assign[i] = best_c;
  }
}

}  // namespace

KMeansResult TrainKMeans(const KMeansRowFn& row, size_t n, size_t d,
                         const KMeansOptions& options) {
  const size_t k = options.k;
  TDM_CHECK_GE(k, 1u);
  TDM_CHECK_LE(k, std::max<size_t>(n, 1));

  KMeansResult result;
  result.centroids.assign(k * d, 0.0f);
  result.assign.assign(n, 0);
  if (n == 0) return result;

  // Init: k distinct member vectors as seeds (same scheme the IVF coarse
  // quantizer always used).
  {
    util::Rng rng(options.seed);
    const std::vector<size_t> seeds = rng.SampleIndices(n, k);
    for (size_t c = 0; c < k; ++c) {
      std::copy_n(row(seeds[c]), d, result.centroids.data() + c * d);
    }
  }
  if (k == 1) return result;  // everything assigns to the only cell

  // Per-centroid score bias: 0 in spherical mode (centroids normalized,
  // rank by dot), ||c||^2 / 2 in Euclidean mode (argmin distance ==
  // argmax dot - half norm).
  std::vector<float> bias(k, 0.0f);
  auto refresh_bias = [&] {
    if (options.spherical) return;
    for (size_t c = 0; c < k; ++c) {
      bias[c] =
          0.5f * simd::SquaredNorm(result.centroids.data() + c * d, d);
    }
  };
  refresh_bias();

  std::vector<double> sums(k * d);
  std::vector<size_t> counts(k);
  // iters assignment+update rounds, plus one final assignment so
  // `assign` matches the returned centroids (encoders need that).
  for (size_t iter = 0; iter <= options.iters; ++iter) {
    util::ThreadPool::ParallelFor(
        n, options.threads,
        [&](size_t begin, size_t end, size_t /*thread_idx*/) {
          AssignRange(row, begin, end, d, result.centroids, bias, k,
                      result.assign.data());
        });
    if (iter == options.iters) break;

    // Update: sequential accumulation in id order keeps the result
    // bit-identical across thread counts (no fp reassociation).
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (size_t i = 0; i < n; ++i) {
      const size_t c = static_cast<size_t>(result.assign[i]);
      const float* v = row(i);
      double* s = sums.data() + c * d;
      for (size_t j = 0; j < d; ++j) s[j] += v[j];
      ++counts[c];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // empty cell keeps its seed
      float* cent = result.centroids.data() + c * d;
      for (size_t j = 0; j < d; ++j) {
        cent[j] = static_cast<float>(sums[c * d + j] /
                                     static_cast<double>(counts[c]));
      }
      if (options.spherical) {
        NormalizeSlice(cent, static_cast<int>(d));
      }
    }
    refresh_bias();
  }
  return result;
}

}  // namespace serve
}  // namespace tdmatch
