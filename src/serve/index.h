#ifndef TDMATCH_SERVE_INDEX_H_
#define TDMATCH_SERVE_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "match/top_k.h"

namespace tdmatch {
namespace serve {

/// L2-normalizes a raw `dim`-sized slice in place (zero vectors stay
/// zero) — the pointer-level counterpart of EmbeddingTable::Normalize,
/// shared by the serving matrix and the IVF centroid update.
void NormalizeSlice(float* row, int dim);

/// \brief Immutable row-major matrix of L2-normalized vectors — the shared
/// storage behind every serving index.
///
/// Normalizing once at build time turns cosine similarity into a plain dot
/// product on the query path, and one flat allocation keeps the scan loops
/// on contiguous memory. Candidate ids are row indices; the caller owns
/// the id → label mapping (see QueryEngine).
class VectorMatrix {
 public:
  VectorMatrix() = default;

  /// Copies and L2-normalizes the rows (zero vectors stay zero). Every row
  /// must have `dim` entries.
  static VectorMatrix FromRows(
      const std::vector<const std::vector<float>*>& rows, int dim);

  /// Same, gathering from a raw row-major f32 payload (`payload` holds
  /// rows of `dim` floats; `rows[i]` is the source row index of output row
  /// i). Rows are memcpy'd, so the payload may be unaligned — this is the
  /// bridge from a zero-copy SnapshotView into the (necessarily copying,
  /// because normalizing) index matrix.
  static VectorMatrix FromRawRows(const char* payload,
                                  const std::vector<size_t>& rows, int dim);

  const float* row(size_t i) const {
    return data_.data() + i * static_cast<size_t>(dim_);
  }
  size_t size() const { return n_; }
  int dim() const { return dim_; }

  /// Dot product of a `dim()`-sized query against row i.
  float Dot(const float* query, size_t i) const;

 private:
  std::vector<float> data_;
  size_t n_ = 0;
  int dim_ = 0;
};

/// \brief Top-k retrieval over a fixed candidate set — the serving-side
/// contract. Implementations: ExactIndex (brute force, the correctness
/// reference) and IvfIndex (approximate, the latency play).
///
/// Queries are raw `dim()`-sized float vectors; they are L2-normalized by
/// the caller-facing Search wrapper so scores are cosines. `allowed`, when
/// non-null, restricts results to candidate ids with allowed[id] != 0 —
/// the hook for blocking-aware filtered queries. All implementations are
/// immutable after construction and safe for concurrent Search calls.
class Index {
 public:
  virtual ~Index() = default;

  /// "exact" / "ivf" / "ivf_pq".
  virtual std::string name() const = 0;
  virtual size_t size() const = 0;
  virtual int dim() const = 0;

  /// Bytes of auxiliary structure the index owns on top of the shared
  /// candidate matrix (bench/serve_qps reports it; check_bench gates its
  /// growth). ExactIndex owns nothing beyond the matrix, hence 0.
  virtual size_t MemoryBytes() const { return 0; }

  /// Top-k candidates by cosine, best first, ties broken by lower id.
  /// `query` must already be L2-normalized (see SearchVec).
  virtual std::vector<match::Match> Search(
      const float* query, size_t k,
      const std::vector<char>* allowed = nullptr) const = 0;

  /// Convenience wrapper: normalizes a copy of `query` and searches.
  std::vector<match::Match> SearchVec(
      const std::vector<float>& query, size_t k,
      const std::vector<char>* allowed = nullptr) const;
};

/// \brief Brute-force scan over the full candidate matrix. O(n · dim) per
/// query: the baseline every approximate index must beat, and the exact
/// reference recall is measured against.
class ExactIndex : public Index {
 public:
  explicit ExactIndex(std::shared_ptr<const VectorMatrix> data)
      : data_(std::move(data)) {}

  std::string name() const override { return "exact"; }
  size_t size() const override { return data_->size(); }
  int dim() const override { return data_->dim(); }

  std::vector<match::Match> Search(
      const float* query, size_t k,
      const std::vector<char>* allowed = nullptr) const override;

 private:
  std::shared_ptr<const VectorMatrix> data_;
};

/// Fraction of `exact`'s top-k ids that `approx` also returns, averaged
/// over the query set — the standard ANN recall@k measurement.
double MeasureRecallAtK(const Index& approx, const Index& exact,
                        const std::vector<std::vector<float>>& queries,
                        size_t k);

}  // namespace serve
}  // namespace tdmatch

#endif  // TDMATCH_SERVE_INDEX_H_
