#ifndef TDMATCH_SERVE_MMAP_SNAPSHOT_H_
#define TDMATCH_SERVE_MMAP_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "serve/snapshot.h"
#include "util/mmap_file.h"
#include "util/result.h"
#include "util/status.h"

namespace tdmatch {
namespace serve {

/// \brief Zero-copy view over a memory-mapped snapshot file.
///
/// Reads the exact on-disk format SnapshotIo writes, but in place: Open
/// mmaps the file, validates the header, geometry, and trailing CRC-32
/// (same rejection matrix as the copying loader — bad magic, version skew,
/// foreign endianness, truncation, corruption, hostile declared counts,
/// payload sizes that overflow narrow arithmetic), indexes the labels as
/// string_views into the mapping, and exposes the f32 payload without
/// copying a single vector. Load cost is the CRC scan plus the label
/// index; the payload itself is demand-paged, and several QueryEngines
/// can share one mapping through the shared_ptr returned by Open.
///
/// The view is immutable and safe for concurrent readers. Pointers and
/// string_views obtained from it are valid exactly as long as the view is
/// alive — hold the shared_ptr for as long as results circulate (the
/// serving hot-reload scheme retires old views only after the last
/// in-flight query drops its reference).
class SnapshotView {
 public:
  /// Maps and validates `path`. `verify_crc` can be turned off to skip
  /// the whole-file CRC scan when the caller has already verified the
  /// artifact (load becomes O(labels) instead of O(bytes)).
  static util::Result<std::shared_ptr<const SnapshotView>> Open(
      const std::string& path, bool verify_crc = true);

  const SnapshotMeta& meta() const { return meta_; }
  int dim() const { return static_cast<int>(dim_); }
  size_t size() const { return labels_.size(); }
  const std::string& path() const { return file_.path(); }
  size_t file_bytes() const { return file_.size(); }

  std::string_view label(size_t i) const { return labels_[i]; }
  const std::vector<std::string_view>& labels() const { return labels_; }

  /// Row index of `label`, or -1 when absent. O(1).
  int64_t FindRow(std::string_view label) const {
    auto it = index_.find(label);
    return it == index_.end() ? -1 : static_cast<int64_t>(it->second);
  }

  /// True when the payload is 4-byte aligned in the mapping (always the
  /// case for snapshots written by this codebase's SnapshotIo, which pads
  /// the pre-payload bytes; see SnapshotIo::kPadKey).
  bool aligned() const { return aligned_; }

  /// Row `i` in place — no copy. Only valid when aligned().
  const float* row(size_t i) const;

  /// Copies row `i` into `out` (dim() floats). Works for any alignment.
  void CopyRow(size_t i, float* out) const;

  /// The raw payload bytes (size() * dim() * 4). Valid for any alignment;
  /// useful with VectorMatrix::FromRawRows.
  const char* payload() const { return payload_; }

  /// Bytes of the first version-2 section tagged `tag`, as a zero-copy
  /// view into the mapping, or nullptr when absent (every version-1 file).
  const std::string_view* Section(std::string_view tag) const {
    for (const auto& s : sections_) {
      if (s.first == tag) return &s.second;
    }
    return nullptr;
  }
  const std::vector<std::pair<std::string_view, std::string_view>>& sections()
      const {
    return sections_;
  }

 private:
  SnapshotView() = default;

  util::MmapFile file_;
  SnapshotMeta meta_;
  uint32_t dim_ = 0;
  std::vector<std::string_view> labels_;
  std::unordered_map<std::string_view, uint32_t> index_;
  std::vector<std::pair<std::string_view, std::string_view>> sections_;
  const char* payload_ = nullptr;
  bool aligned_ = false;
};

}  // namespace serve
}  // namespace tdmatch

#endif  // TDMATCH_SERVE_MMAP_SNAPSHOT_H_
