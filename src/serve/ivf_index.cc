#include "serve/ivf_index.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace tdmatch {
namespace serve {

IvfIndex::IvfIndex(std::shared_ptr<const VectorMatrix> data,
                   IvfOptions options)
    : data_(std::move(data)), options_(options) {
  const size_t n = data_->size();
  nlist_ = options_.nlist;
  if (nlist_ == 0) {
    nlist_ = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(std::max<size_t>(n, 1)))));
  }
  nlist_ = std::max<size_t>(1, std::min(nlist_, std::max<size_t>(n, 1)));
  set_nprobe(options_.nprobe);
  Train();
}

void IvfIndex::set_nprobe(size_t nprobe) {
  nprobe_ = std::max<size_t>(1, std::min(nprobe, nlist_));
}

void IvfIndex::Train() {
  const size_t n = data_->size();
  const int dim = data_->dim();
  const size_t d = static_cast<size_t>(dim);

  // --- k-means init: nlist distinct member vectors as seeds --------------
  centroids_.assign(nlist_ * d, 0.0f);
  if (n > 0) {
    util::Rng rng(options_.seed);
    const std::vector<size_t> seeds = rng.SampleIndices(n, nlist_);
    for (size_t c = 0; c < nlist_; ++c) {
      std::copy_n(data_->row(seeds[c]), d, centroids_.data() + c * d);
    }
  }

  std::vector<int32_t> assign(n, 0);
  if (nlist_ > 1 && n > 0) {
    std::vector<double> sums(nlist_ * d);
    std::vector<size_t> counts(nlist_);
    for (size_t iter = 0; iter < options_.kmeans_iters; ++iter) {
      // Assignment: pure map over points — deterministic for any chunking,
      // so the pool only has to carve disjoint ranges.
      util::ThreadPool::ParallelFor(
          n, options_.threads,
          [&](size_t begin, size_t end, size_t /*thread_idx*/) {
            for (size_t i = begin; i < end; ++i) {
              const float* v = data_->row(i);
              float best = -2.0f;
              int32_t best_c = 0;
              for (size_t c = 0; c < nlist_; ++c) {
                const float* cent = centroids_.data() + c * d;
                float dot = 0.0f;
                for (size_t k = 0; k < d; ++k) dot += v[k] * cent[k];
                if (dot > best) {
                  best = dot;
                  best_c = static_cast<int32_t>(c);
                }
              }
              assign[i] = best_c;
            }
          });

      // Update: sequential accumulation in id order keeps the result
      // bit-identical across thread counts (no fp reassociation).
      std::fill(sums.begin(), sums.end(), 0.0);
      std::fill(counts.begin(), counts.end(), 0);
      for (size_t i = 0; i < n; ++i) {
        const size_t c = static_cast<size_t>(assign[i]);
        const float* v = data_->row(i);
        double* s = sums.data() + c * d;
        for (size_t k = 0; k < d; ++k) s[k] += v[k];
        ++counts[c];
      }
      for (size_t c = 0; c < nlist_; ++c) {
        if (counts[c] == 0) continue;  // empty cell keeps its seed
        float* cent = centroids_.data() + c * d;
        for (size_t k = 0; k < d; ++k) {
          cent[k] = static_cast<float>(sums[c * d + k] /
                                       static_cast<double>(counts[c]));
        }
        // Spherical k-means: cells rank by dot product, so centroids live
        // on the unit sphere too.
        NormalizeSlice(cent, dim);
      }
    }
  }

  // --- inverted lists, flat CSR ------------------------------------------
  list_offsets_.assign(nlist_ + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    ++list_offsets_[static_cast<size_t>(assign[i]) + 1];
  }
  for (size_t c = 0; c < nlist_; ++c) {
    list_offsets_[c + 1] += list_offsets_[c];
  }
  list_ids_.resize(n);
  list_vectors_.resize(n * d);
  std::vector<size_t> fill = list_offsets_;
  for (size_t i = 0; i < n; ++i) {  // id order within each cell
    const size_t pos = fill[static_cast<size_t>(assign[i])]++;
    list_ids_[pos] = static_cast<int32_t>(i);
    std::copy_n(data_->row(i), d, list_vectors_.data() + pos * d);
  }
}

std::vector<match::Match> IvfIndex::Search(
    const float* query, size_t k, const std::vector<char>* allowed) const {
  const size_t d = static_cast<size_t>(data_->dim());
  if (data_->size() == 0 || k == 0) return {};

  // Coarse quantizer: nearest nprobe cells by centroid dot product.
  std::vector<double> cell_scores(nlist_);
  for (size_t c = 0; c < nlist_; ++c) {
    const float* cent = centroids_.data() + c * d;
    float dot = 0.0f;
    for (size_t i = 0; i < d; ++i) dot += query[i] * cent[i];
    cell_scores[c] = dot;
  }
  const std::vector<match::Match> probes =
      match::TopK::Select(cell_scores, nprobe_);

  // Scan the probed lists: exact cosine on every member (the vectors are
  // full-precision, so the "re-rank" is exact by construction).
  std::vector<match::Match> gathered;
  for (const auto& probe : probes) {
    const size_t c = static_cast<size_t>(probe.index);
    for (size_t pos = list_offsets_[c]; pos < list_offsets_[c + 1]; ++pos) {
      const int32_t id = list_ids_[pos];
      if (allowed != nullptr && (*allowed)[static_cast<size_t>(id)] == 0) {
        continue;
      }
      const float* v = list_vectors_.data() + pos * d;
      float dot = 0.0f;
      for (size_t i = 0; i < d; ++i) dot += query[i] * v[i];
      gathered.push_back(match::Match{id, dot});
    }
  }

  // Re-rank through the bounded heap of match::TopK, whose ties break by
  // lower position. Sorting the gather by candidate id first (cheap: the
  // gather is nprobe short id-sorted runs) makes that tie-break the
  // global id order — so IVF and exact return identical results whenever
  // the probed cells cover the exact top-k, ties included.
  std::sort(gathered.begin(), gathered.end(),
            [](const match::Match& a, const match::Match& b) {
              return a.index < b.index;
            });
  std::vector<double> scores;
  scores.reserve(gathered.size());
  for (const auto& g : gathered) scores.push_back(g.score);
  std::vector<match::Match> top = match::TopK::Select(scores, k);
  std::vector<match::Match> out;
  out.reserve(top.size());
  for (const auto& m : top) {
    out.push_back(
        match::Match{gathered[static_cast<size_t>(m.index)].index, m.score});
  }
  return out;
}

}  // namespace serve
}  // namespace tdmatch
