#include "serve/ivf_index.h"

#include <algorithm>
#include <cmath>

#include "serve/kmeans.h"
#include "util/byte_io.h"
#include "util/logging.h"
#include "util/simd/kernels.h"
#include "util/string_util.h"

namespace tdmatch {
namespace serve {

namespace {

/// PQ codebooks always hold 256 slots per subquantizer (the u8 code space)
/// even when fewer were trainable (n < 256): the ADC table then has a
/// fixed 256 stride, so any byte is a safe index and the AdcScan kernel
/// needs no bounds logic.
constexpr size_t kPqCodes = 256;

void AppendRaw(std::string* out, const void* data, size_t bytes) {
  out->append(reinterpret_cast<const char*>(data), bytes);
}

/// Sub-format version of the serialized index section ("ivfpq" tag).
constexpr uint32_t kIvfWireVersion = 1;

}  // namespace

IvfIndex::IvfIndex(std::shared_ptr<const VectorMatrix> data,
                   IvfOptions options)
    : data_(std::move(data)), options_(options) {
  const size_t n = data_->size();
  nlist_ = options_.nlist;
  if (nlist_ == 0) {
    nlist_ = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(std::max<size_t>(n, 1)))));
  }
  nlist_ = std::max<size_t>(1, std::min(nlist_, std::max<size_t>(n, 1)));
  if (options_.pq_m > 0) {
    TDM_CHECK_EQ(static_cast<size_t>(data_->dim()) % options_.pq_m, 0u)
        << "pq_m=" << options_.pq_m << " must divide dim=" << data_->dim();
  }
  set_nprobe(options_.nprobe);
  Train();
}

void IvfIndex::set_nprobe(size_t nprobe) {
  nprobe_ = std::max<size_t>(1, std::min(nprobe, nlist_));
}

void IvfIndex::Train() {
  const size_t n = data_->size();
  const size_t d = static_cast<size_t>(data_->dim());

  // Coarse quantizer: spherical k-means over the normalized members.
  KMeansOptions km;
  km.k = nlist_;
  km.iters = options_.kmeans_iters;
  km.seed = options_.seed;
  km.threads = options_.threads;
  km.spherical = true;
  KMeansResult coarse = TrainKMeans(
      [this](size_t i) { return data_->row(i); }, n, d, km);
  centroids_ = std::move(coarse.centroids);
  const std::vector<int32_t>& assign = coarse.assign;

  // PQ codebooks + per-candidate codes (in id order for now).
  std::vector<uint8_t> codes;
  if (pq_enabled()) TrainPq(&codes);

  // Inverted lists, flat CSR.
  list_offsets_.assign(nlist_ + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    ++list_offsets_[static_cast<size_t>(assign[i]) + 1];
  }
  for (size_t c = 0; c < nlist_; ++c) {
    list_offsets_[c + 1] += list_offsets_[c];
  }
  list_ids_.resize(n);
  const size_t m = options_.pq_m;
  if (pq_enabled()) {
    list_codes_.resize(n * m);
  } else {
    list_vectors_.resize(n * d);
  }
  std::vector<size_t> fill = list_offsets_;
  for (size_t i = 0; i < n; ++i) {  // id order within each cell
    const size_t pos = fill[static_cast<size_t>(assign[i])]++;
    list_ids_[pos] = static_cast<int32_t>(i);
    if (pq_enabled()) {
      std::copy_n(codes.data() + i * m, m, list_codes_.data() + pos * m);
    } else {
      std::copy_n(data_->row(i), d, list_vectors_.data() + pos * d);
    }
  }
}

void IvfIndex::TrainPq(std::vector<uint8_t>* codes) {
  const size_t n = data_->size();
  const size_t d = static_cast<size_t>(data_->dim());
  const size_t m = options_.pq_m;
  const size_t ds = d / m;

  codebook_.assign(m * kPqCodes * ds, 0.0f);
  codes->assign(n * m, 0);
  if (n == 0) return;

  for (size_t s = 0; s < m; ++s) {
    KMeansOptions km;
    // Fewer points than code slots: train what's trainable, leave the
    // rest of the 256-slot stripe zeroed.
    km.k = std::min<size_t>(kPqCodes, n);
    km.iters = options_.pq_iters;
    // Distinct seed per subquantizer so subspaces don't share an init
    // sequence; still a pure function of the index seed.
    km.seed = options_.seed + 0x9e3779b9u * (s + 1);
    km.threads = options_.threads;
    km.spherical = false;  // Euclidean: codes minimize subspace distance
    const size_t off = s * ds;
    KMeansResult sub = TrainKMeans(
        [this, off](size_t i) { return data_->row(i) + off; }, n, ds, km);
    std::copy(sub.centroids.begin(), sub.centroids.end(),
              codebook_.begin() + s * kPqCodes * ds);
    // The trainer's final-pass assignments ARE the encodings (assignments
    // are taken against the returned centroids).
    for (size_t i = 0; i < n; ++i) {
      (*codes)[i * m + s] = static_cast<uint8_t>(sub.assign[i]);
    }
  }
}

size_t IvfIndex::MemoryBytes() const {
  return centroids_.size() * sizeof(float) +
         list_offsets_.size() * sizeof(size_t) +
         list_ids_.size() * sizeof(int32_t) + ListBytes();
}

size_t IvfIndex::ListBytes() const {
  if (pq_enabled()) {
    return list_codes_.size() * sizeof(uint8_t) +
           codebook_.size() * sizeof(float);
  }
  return list_vectors_.size() * sizeof(float);
}

std::vector<match::Match> IvfIndex::Search(
    const float* query, size_t k, const std::vector<char>* allowed) const {
  return SearchWithNprobe(query, k, nprobe_, allowed);
}

std::vector<match::Match> IvfIndex::SearchWithNprobe(
    const float* query, size_t k, size_t nprobe,
    const std::vector<char>* allowed) const {
  const size_t d = static_cast<size_t>(data_->dim());
  if (data_->size() == 0 || k == 0) return {};
  nprobe = std::max<size_t>(1, std::min(nprobe, nlist_));

  // Coarse quantizer: nearest nprobe cells by centroid dot product.
  std::vector<double> cell_scores(nlist_);
  for (size_t c = 0; c < nlist_; ++c) {
    cell_scores[c] = simd::Dot(query, centroids_.data() + c * d, d);
  }
  const std::vector<match::Match> probes =
      match::TopK::Select(cell_scores, nprobe);

  return pq_enabled() ? SearchPq(query, k, probes, allowed)
                      : SearchFlat(query, k, probes, allowed);
}

std::vector<match::Match> IvfIndex::SearchFlat(
    const float* query, size_t k, const std::vector<match::Match>& probes,
    const std::vector<char>* allowed) const {
  const size_t d = static_cast<size_t>(data_->dim());

  // Scan the probed lists: exact cosine on every member (the vectors are
  // full-precision, so the "re-rank" is exact by construction).
  std::vector<match::Match> gathered;
  for (const auto& probe : probes) {
    const size_t c = static_cast<size_t>(probe.index);
    for (size_t pos = list_offsets_[c]; pos < list_offsets_[c + 1]; ++pos) {
      const int32_t id = list_ids_[pos];
      if (allowed != nullptr && (*allowed)[static_cast<size_t>(id)] == 0) {
        continue;
      }
      const float dot = simd::Dot(query, list_vectors_.data() + pos * d, d);
      gathered.push_back(match::Match{id, dot});
    }
  }

  // Re-rank through the bounded heap of match::TopK, whose ties break by
  // lower position. Sorting the gather by candidate id first (cheap: the
  // gather is nprobe short id-sorted runs) makes that tie-break the
  // global id order — so IVF and exact return identical results whenever
  // the probed cells cover the exact top-k, ties included.
  std::sort(gathered.begin(), gathered.end(),
            [](const match::Match& a, const match::Match& b) {
              return a.index < b.index;
            });
  std::vector<double> scores;
  scores.reserve(gathered.size());
  for (const auto& g : gathered) scores.push_back(g.score);
  std::vector<match::Match> top = match::TopK::Select(scores, k);
  std::vector<match::Match> out;
  out.reserve(top.size());
  for (const auto& m : top) {
    out.push_back(
        match::Match{gathered[static_cast<size_t>(m.index)].index, m.score});
  }
  return out;
}

std::vector<match::Match> IvfIndex::SearchPq(
    const float* query, size_t k, const std::vector<match::Match>& probes,
    const std::vector<char>* allowed) const {
  const size_t d = static_cast<size_t>(data_->dim());
  const size_t m = options_.pq_m;
  const size_t ds = d / m;

  // ADC table: the dot of each query subspace against each codebook
  // entry. A member's approximate score is then m table lookups summed —
  // dot(query, reconstruction(code)) by linearity.
  std::vector<float> table(m * kPqCodes);
  for (size_t s = 0; s < m; ++s) {
    const float* q = query + s * ds;
    const float* cb = codebook_.data() + s * kPqCodes * ds;
    float* row = table.data() + s * kPqCodes;
    for (size_t j = 0; j < kPqCodes; ++j) {
      row[j] = simd::Dot(q, cb + j * ds, ds);
    }
  }

  // ADC scan of the probed lists: each cell's codes are one contiguous
  // stripe, scored in a single batched kernel call; the allowed filter
  // applies during the gather of the scored stripe.
  std::vector<match::Match> gathered;
  std::vector<float> approx;
  for (const auto& probe : probes) {
    const size_t c = static_cast<size_t>(probe.index);
    const size_t begin = list_offsets_[c];
    const size_t count = list_offsets_[c + 1] - begin;
    if (count == 0) continue;
    approx.resize(count);
    simd::AdcScan(list_codes_.data() + begin * m, count, m, table.data(),
                  approx.data());
    for (size_t j = 0; j < count; ++j) {
      const int32_t id = list_ids_[begin + j];
      if (allowed != nullptr && (*allowed)[static_cast<size_t>(id)] == 0) {
        continue;
      }
      gathered.push_back(match::Match{id, approx[j]});
    }
  }

  // Keep the best `pq_rerank` ADC candidates (at least k), then re-rank
  // those exactly against the shared full-precision matrix. Both
  // selections run over id-sorted input so TopK's position tie-break is
  // the global id order, matching ExactIndex on ties.
  std::sort(gathered.begin(), gathered.end(),
            [](const match::Match& a, const match::Match& b) {
              return a.index < b.index;
            });
  std::vector<double> approx_scores;
  approx_scores.reserve(gathered.size());
  for (const auto& g : gathered) approx_scores.push_back(g.score);
  const size_t rerank = std::max<size_t>(options_.pq_rerank, k);
  std::vector<match::Match> shortlist =
      match::TopK::Select(approx_scores, rerank);

  std::vector<int32_t> ids;
  ids.reserve(shortlist.size());
  for (const auto& s : shortlist) {
    ids.push_back(gathered[static_cast<size_t>(s.index)].index);
  }
  std::sort(ids.begin(), ids.end());
  std::vector<double> exact_scores;
  exact_scores.reserve(ids.size());
  for (const int32_t id : ids) {
    exact_scores.push_back(
        simd::Dot(query, data_->row(static_cast<size_t>(id)), d));
  }
  std::vector<match::Match> top = match::TopK::Select(exact_scores, k);
  std::vector<match::Match> out;
  out.reserve(top.size());
  for (const auto& t : top) {
    out.push_back(match::Match{ids[static_cast<size_t>(t.index)], t.score});
  }
  return out;
}

std::string IvfIndex::Serialize(uint32_t labels_crc) const {
  const size_t n = data_->size();
  const size_t d = static_cast<size_t>(data_->dim());
  std::string out;
  out.reserve(64 + ListBytes() + centroids_.size() * sizeof(float) +
              list_ids_.size() * sizeof(int32_t) +
              list_offsets_.size() * sizeof(uint64_t));
  util::AppendU32(&out, kIvfWireVersion);
  util::AppendU32(&out, labels_crc);
  util::AppendU32(&out, static_cast<uint32_t>(d));
  util::AppendU64(&out, n);
  util::AppendU64(&out, nlist_);
  util::AppendU32(&out, static_cast<uint32_t>(options_.pq_m));
  AppendRaw(&out, centroids_.data(), centroids_.size() * sizeof(float));
  for (const size_t off : list_offsets_) util::AppendU64(&out, off);
  AppendRaw(&out, list_ids_.data(), list_ids_.size() * sizeof(int32_t));
  if (pq_enabled()) {
    AppendRaw(&out, codebook_.data(), codebook_.size() * sizeof(float));
    AppendRaw(&out, list_codes_.data(), list_codes_.size());
  } else {
    AppendRaw(&out, list_vectors_.data(),
              list_vectors_.size() * sizeof(float));
  }
  return out;
}

util::Result<std::unique_ptr<IvfIndex>> IvfIndex::Deserialize(
    std::string_view bytes, std::shared_ptr<const VectorMatrix> data,
    uint32_t labels_crc, const IvfOptions& options) {
  using util::Status;
  using util::StrFormat;
  util::ByteCursor cur(bytes);

  uint32_t version = 0, crc = 0, dim32 = 0, pq_m32 = 0;
  uint64_t n64 = 0, nlist64 = 0;
  TDM_RETURN_NOT_OK(cur.ReadU32(&version));
  if (version != kIvfWireVersion) {
    return Status::IOError(
        StrFormat("ivf section: unsupported version %u", version));
  }
  TDM_RETURN_NOT_OK(cur.ReadU32(&crc));
  if (crc != labels_crc) {
    return Status::IOError(StrFormat(
        "ivf section: candidate fingerprint mismatch (section %08x, "
        "snapshot %08x) — index was built over a different candidate set",
        crc, labels_crc));
  }
  TDM_RETURN_NOT_OK(cur.ReadU32(&dim32));
  TDM_RETURN_NOT_OK(cur.ReadU64(&n64));
  TDM_RETURN_NOT_OK(cur.ReadU64(&nlist64));
  TDM_RETURN_NOT_OK(cur.ReadU32(&pq_m32));

  const size_t d = static_cast<size_t>(data->dim());
  const size_t n = data->size();
  if (dim32 != d) {
    return Status::IOError(
        StrFormat("ivf section: dim %u != snapshot dim %zu", dim32, d));
  }
  if (n64 != n) {
    return Status::IOError(StrFormat(
        "ivf section: %llu vectors != snapshot %zu",
        static_cast<unsigned long long>(n64), n));
  }
  const size_t nlist = static_cast<size_t>(nlist64);
  if (nlist < 1 || nlist > std::max<size_t>(n, 1)) {
    return Status::IOError(
        StrFormat("ivf section: nlist %zu out of range for n=%zu", nlist, n));
  }
  const size_t m = pq_m32;
  if (m > 0 && (m > d || d % m != 0)) {
    return Status::IOError(
        StrFormat("ivf section: pq_m %zu does not divide dim %zu", m, d));
  }

  auto idx = std::unique_ptr<IvfIndex>(new IvfIndex(std::move(data)));
  idx->options_ = options;
  idx->options_.nlist = nlist;
  idx->options_.pq_m = m;
  idx->nlist_ = nlist;
  idx->set_nprobe(options.nprobe);

  idx->centroids_.resize(nlist * d);
  TDM_RETURN_NOT_OK(cur.ReadFloats(idx->centroids_.data(), nlist * d));

  idx->list_offsets_.resize(nlist + 1);
  for (size_t c = 0; c <= nlist; ++c) {
    uint64_t off = 0;
    TDM_RETURN_NOT_OK(cur.ReadU64(&off));
    idx->list_offsets_[c] = static_cast<size_t>(off);
  }
  if (idx->list_offsets_.front() != 0 || idx->list_offsets_.back() != n) {
    return Status::IOError("ivf section: list offsets do not span [0, n)");
  }
  for (size_t c = 0; c < nlist; ++c) {
    if (idx->list_offsets_[c] > idx->list_offsets_[c + 1]) {
      return Status::IOError(
          StrFormat("ivf section: list offsets not monotone at cell %zu", c));
    }
  }

  idx->list_ids_.resize(n);
  TDM_RETURN_NOT_OK(
      cur.ReadBytes(idx->list_ids_.data(), n * sizeof(int32_t)));
  std::vector<char> seen(n, 0);
  for (const int32_t id : idx->list_ids_) {
    if (id < 0 || static_cast<size_t>(id) >= n || seen[id]) {
      return Status::IOError(StrFormat(
          "ivf section: candidate id %d out of range or duplicated", id));
    }
    seen[id] = 1;
  }

  if (m > 0) {
    idx->codebook_.resize(m * kPqCodes * (d / m));
    TDM_RETURN_NOT_OK(
        cur.ReadFloats(idx->codebook_.data(), idx->codebook_.size()));
    idx->list_codes_.resize(n * m);
    TDM_RETURN_NOT_OK(cur.ReadBytes(idx->list_codes_.data(), n * m));
  } else {
    idx->list_vectors_.resize(n * d);
    TDM_RETURN_NOT_OK(cur.ReadFloats(idx->list_vectors_.data(), n * d));
  }
  if (cur.Remaining() != 0) {
    return Status::IOError(StrFormat(
        "ivf section: %zu trailing bytes after payload", cur.Remaining()));
  }
  return idx;
}

}  // namespace serve
}  // namespace tdmatch
