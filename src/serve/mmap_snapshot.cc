#include "serve/mmap_snapshot.h"

#include <cstring>

#include "util/crc32.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace tdmatch {
namespace serve {

namespace {

constexpr char kMagic[4] = {'T', 'D', 'M', 'S'};
constexpr uint32_t kEndianMarker = 0x01020304u;
constexpr size_t kHeaderBytes = 12;
constexpr size_t kFooterBytes = 4;

/// Bounds-checked sequential reader over the mapped body. Unlike the
/// copying loader's cursor it never materializes bytes: strings come back
/// as views into the mapping.
class ViewCursor {
 public:
  ViewCursor(const char* data, size_t size) : data_(data), size_(size) {}

  util::Status ReadU32(uint32_t* v) { return ReadRaw(v, sizeof(*v)); }
  util::Status ReadU64(uint64_t* v) { return ReadRaw(v, sizeof(*v)); }

  util::Status ReadStringView(std::string_view* s) {
    uint32_t len = 0;
    TDM_RETURN_NOT_OK(ReadU32(&len));
    if (len > Remaining()) {
      return util::Status::IOError(util::StrFormat(
          "snapshot truncated: string of %u bytes with %zu bytes left", len,
          Remaining()));
    }
    *s = std::string_view(data_ + pos_, len);
    pos_ += len;
    return util::Status::OK();
  }

  /// `bytes` raw bytes as a view into the mapping.
  util::Status ReadView(size_t bytes, std::string_view* s) {
    TDM_RETURN_NOT_OK(Skip(bytes));
    *s = std::string_view(data_ + pos_ - bytes, bytes);
    return util::Status::OK();
  }

  util::Status Skip(size_t bytes) {
    if (bytes > Remaining()) {
      return util::Status::IOError(util::StrFormat(
          "snapshot truncated: need %zu bytes, %zu left", bytes,
          Remaining()));
    }
    pos_ += bytes;
    return util::Status::OK();
  }

  size_t Remaining() const { return size_ - pos_; }
  size_t pos() const { return pos_; }

 private:
  util::Status ReadRaw(void* out, size_t bytes) {
    TDM_RETURN_NOT_OK(Skip(bytes));
    std::memcpy(out, data_ + pos_ - bytes, bytes);
    return util::Status::OK();
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace

util::Result<std::shared_ptr<const SnapshotView>> SnapshotView::Open(
    const std::string& path, bool verify_crc) {
  TDM_ASSIGN_OR_RETURN(util::MmapFile file, util::MmapFile::Open(path));
  if (file.size() < kHeaderBytes + kFooterBytes) {
    return util::Status::IOError(util::StrFormat(
        "%s: not a snapshot (%zu bytes, smaller than header + CRC)",
        path.c_str(), file.size()));
  }
  const char* data = file.data();

  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    return util::Status::InvalidArgument(
        path + ": bad magic (not a TDmatch snapshot)");
  }
  uint32_t version = 0;
  uint32_t endian = 0;
  std::memcpy(&version, data + 4, sizeof(version));
  std::memcpy(&endian, data + 8, sizeof(endian));
  if (endian != kEndianMarker) {
    return util::Status::InvalidArgument(util::StrFormat(
        "%s: endianness marker 0x%08x != 0x%08x — snapshot was written on a "
        "machine with different byte order",
        path.c_str(), endian, kEndianMarker));
  }
  if (version != SnapshotIo::kVersion &&
      version != SnapshotIo::kVersionSections) {
    return util::Status::InvalidArgument(util::StrFormat(
        "%s: snapshot version %u, this build reads %u and %u", path.c_str(),
        version, SnapshotIo::kVersion, SnapshotIo::kVersionSections));
  }

  const char* body = data + kHeaderBytes;
  const size_t body_size = file.size() - kHeaderBytes - kFooterBytes;
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, data + file.size() - kFooterBytes,
              sizeof(stored_crc));
  if (verify_crc) {
    const uint32_t actual_crc = util::Crc32(body, body_size);
    if (stored_crc != actual_crc) {
      return util::Status::IOError(util::StrFormat(
          "%s: CRC mismatch (stored 0x%08x, computed 0x%08x) — snapshot is "
          "corrupted or truncated",
          path.c_str(), stored_crc, actual_crc));
    }
  }

  ViewCursor cur(body, body_size);
  uint32_t dim = 0;
  uint64_t count = 0;
  TDM_RETURN_NOT_OK(cur.ReadU32(&dim));
  TDM_RETURN_NOT_OK(cur.ReadU64(&count));
  TDM_RETURN_NOT_OK(ValidateSnapshotGeometry(path, dim, count,
                                             cur.Remaining()));
  if (count > UINT32_MAX) {
    return util::Status::InvalidArgument(util::StrFormat(
        "%s: %llu vectors exceed the label index capacity", path.c_str(),
        static_cast<unsigned long long>(count)));
  }

  auto view = std::shared_ptr<SnapshotView>(new SnapshotView());
  view->dim_ = dim;
  std::string_view scenario;
  TDM_RETURN_NOT_OK(cur.ReadStringView(&scenario));
  view->meta_.scenario = std::string(scenario);
  uint32_t num_extra = 0;
  TDM_RETURN_NOT_OK(cur.ReadU32(&num_extra));
  if (num_extra > cur.Remaining() / (2 * sizeof(uint32_t))) {
    return util::Status::InvalidArgument(util::StrFormat(
        "%s: declared %u metadata pairs cannot fit in %zu remaining bytes",
        path.c_str(), num_extra, cur.Remaining()));
  }
  for (uint32_t i = 0; i < num_extra; ++i) {
    std::string_view key, value;
    TDM_RETURN_NOT_OK(cur.ReadStringView(&key));
    TDM_RETURN_NOT_OK(cur.ReadStringView(&value));
    if (key == SnapshotIo::kPadKey) continue;  // writer-internal alignment
    view->meta_.extra.emplace_back(std::string(key), std::string(value));
  }

  view->labels_.resize(count);
  view->index_.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    TDM_RETURN_NOT_OK(cur.ReadStringView(&view->labels_[i]));
    const bool inserted =
        view->index_.emplace(view->labels_[i], static_cast<uint32_t>(i))
            .second;
    if (!inserted) {
      return util::Status::InvalidArgument(util::StrFormat(
          "%s: duplicate label '%s'", path.c_str(),
          std::string(view->labels_[i]).c_str()));
    }
  }

  const uint64_t payload_bytes =
      count * static_cast<uint64_t>(dim) * sizeof(float);
  if (payload_bytes > cur.Remaining()) {
    return util::Status::InvalidArgument(util::StrFormat(
        "%s: payload needs %llu bytes but %zu follow the labels",
        path.c_str(), static_cast<unsigned long long>(payload_bytes),
        cur.Remaining()));
  }
  view->payload_ = body + cur.pos();
  view->aligned_ =
      reinterpret_cast<uintptr_t>(view->payload_) % alignof(float) == 0;
  TDM_RETURN_NOT_OK(cur.Skip(static_cast<size_t>(payload_bytes)));

  if (version >= SnapshotIo::kVersionSections) {
    uint32_t num_sections = 0;
    TDM_RETURN_NOT_OK(cur.ReadU32(&num_sections));
    if (num_sections >
        cur.Remaining() / (sizeof(uint32_t) + sizeof(uint64_t))) {
      return util::Status::InvalidArgument(util::StrFormat(
          "%s: declared %u sections cannot fit in %zu remaining bytes",
          path.c_str(), num_sections, cur.Remaining()));
    }
    view->sections_.reserve(num_sections);
    for (uint32_t i = 0; i < num_sections; ++i) {
      std::string_view tag;
      TDM_RETURN_NOT_OK(cur.ReadStringView(&tag));
      uint64_t len = 0;
      TDM_RETURN_NOT_OK(cur.ReadU64(&len));
      if (len > cur.Remaining()) {
        return util::Status::InvalidArgument(util::StrFormat(
            "%s: section \"%s\" declares %llu bytes with %zu left",
            path.c_str(), std::string(tag).c_str(),
            static_cast<unsigned long long>(len), cur.Remaining()));
      }
      std::string_view bytes;
      TDM_RETURN_NOT_OK(cur.ReadView(static_cast<size_t>(len), &bytes));
      view->sections_.emplace_back(tag, bytes);
    }
  }

  if (cur.Remaining() != 0) {
    return util::Status::InvalidArgument(util::StrFormat(
        "%s: %zu trailing bytes after the vector payload", path.c_str(),
        cur.Remaining()));
  }
  view->file_ = std::move(file);
  return std::shared_ptr<const SnapshotView>(std::move(view));
}

const float* SnapshotView::row(size_t i) const {
  TDM_CHECK(aligned_) << "in-place row access on an unaligned snapshot "
                         "payload; use CopyRow";
  return reinterpret_cast<const float*>(payload_) +
         i * static_cast<size_t>(dim_);
}

void SnapshotView::CopyRow(size_t i, float* out) const {
  const size_t row_bytes = static_cast<size_t>(dim_) * sizeof(float);
  std::memcpy(out, payload_ + i * row_bytes, row_bytes);
}

}  // namespace serve
}  // namespace tdmatch
