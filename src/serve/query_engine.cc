#include "serve/query_engine.h"

#include <condition_variable>
#include <mutex>
#include <utility>

#include "util/crc32.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace tdmatch {
namespace serve {

constexpr char QueryEngine::kIvfSectionTag[];

uint32_t QueryEngine::candidate_labels_crc() const {
  uint32_t crc = 0;
  for (const auto& label : candidate_labels_) {
    crc = util::Crc32(label.data(), label.size(), crc);
    crc = util::Crc32("\0", 1, crc);  // unambiguous label boundaries
  }
  return crc;
}

std::string QueryEngine::SerializeIvfSection() const {
  if (ivf_ == nullptr) return {};
  return ivf_->Serialize(candidate_labels_crc());
}

util::Result<QueryEngine> QueryEngine::Build(
    Snapshot snapshot, std::vector<std::string> candidates,
    QueryEngineOptions options) {
  if (candidates.empty()) {
    return util::Status::InvalidArgument("candidate set is empty");
  }
  QueryEngine engine;
  std::vector<const std::vector<float>*> rows;
  rows.reserve(candidates.size());
  engine.candidate_index_.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    const std::vector<float>* vec = snapshot.table.Get(candidates[i]);
    if (vec == nullptr) {
      return util::Status::NotFound(
          util::StrFormat("candidate '%s' has no vector in snapshot '%s'",
                          candidates[i].c_str(),
                          snapshot.meta.scenario.c_str()));
    }
    const bool inserted =
        engine.candidate_index_
            .emplace(candidates[i], static_cast<int32_t>(i))
            .second;
    if (!inserted) {
      return util::Status::InvalidArgument("duplicate candidate label: " +
                                           candidates[i]);
    }
    rows.push_back(vec);
  }

  engine.matrix_ = std::make_shared<VectorMatrix>(
      VectorMatrix::FromRows(rows, snapshot.table.dim()));
  engine.snapshot_ = std::move(snapshot);
  engine.candidate_labels_ = std::move(candidates);
  TDM_RETURN_NOT_OK(engine.FinishBuild(options));
  return engine;
}

util::Result<QueryEngine> QueryEngine::BuildFromView(
    std::shared_ptr<const SnapshotView> view, const std::string& prefix,
    QueryEngineOptions options) {
  if (view == nullptr) {
    return util::Status::InvalidArgument("snapshot view is null");
  }
  QueryEngine engine;
  std::vector<size_t> candidate_rows;
  for (size_t i = 0; i < view->size(); ++i) {
    const std::string_view label = view->label(i);
    if (!util::StartsWith(label, prefix)) continue;
    engine.candidate_index_.emplace(
        std::string(label), static_cast<int32_t>(candidate_rows.size()));
    engine.candidate_labels_.emplace_back(label);
    candidate_rows.push_back(i);
  }
  if (candidate_rows.empty()) {
    return util::Status::NotFound(util::StrFormat(
        "snapshot '%s' has no labels with candidate prefix '%s'",
        view->meta().scenario.c_str(), prefix.c_str()));
  }
  // The candidate vectors are gathered straight from the mapped payload —
  // the only copy is the (necessary) normalized index matrix; no
  // EmbeddingTable is ever materialized.
  engine.matrix_ = std::make_shared<VectorMatrix>(VectorMatrix::FromRawRows(
      view->payload(), candidate_rows, view->dim()));
  engine.snapshot_.meta = view->meta();
  engine.snapshot_.table = embed::EmbeddingTable(view->dim());
  engine.view_ = std::move(view);
  TDM_RETURN_NOT_OK(engine.FinishBuild(options));
  return engine;
}

util::Result<QueryEngine> QueryEngine::BuildOverMatrix(
    std::shared_ptr<const VectorMatrix> matrix,
    std::vector<std::string> candidate_labels, SnapshotMeta meta,
    QueryEngineOptions options) {
  if (matrix == nullptr) {
    return util::Status::InvalidArgument("candidate matrix is null");
  }
  if (candidate_labels.empty()) {
    return util::Status::InvalidArgument("candidate set is empty");
  }
  if (candidate_labels.size() != matrix->size()) {
    return util::Status::InvalidArgument(util::StrFormat(
        "matrix has %zu rows for %zu candidate labels", matrix->size(),
        candidate_labels.size()));
  }
  QueryEngine engine;
  engine.candidate_index_.reserve(candidate_labels.size());
  for (size_t i = 0; i < candidate_labels.size(); ++i) {
    const bool inserted =
        engine.candidate_index_
            .emplace(candidate_labels[i], static_cast<int32_t>(i))
            .second;
    if (!inserted) {
      return util::Status::InvalidArgument("duplicate candidate label: " +
                                           candidate_labels[i]);
    }
  }
  engine.matrix_ = std::move(matrix);
  engine.candidate_labels_ = std::move(candidate_labels);
  engine.snapshot_.meta = std::move(meta);
  engine.snapshot_.table = embed::EmbeddingTable(engine.matrix_->dim());
  // A snapshot "ivfpq" section fingerprints the full candidate set; a
  // matrix built over a partition can never match it.
  options.use_snapshot_index = false;
  TDM_RETURN_NOT_OK(engine.FinishBuild(options));
  return engine;
}

util::Status QueryEngine::FinishBuild(QueryEngineOptions options) {
  options_ = options;
  exact_ = std::make_unique<ExactIndex>(matrix_);
  if (options.build_ivf) {
    IvfOptions ivf = options.ivf;
    ivf.threads = options.threads;
    // A snapshot may carry the trained index as an "ivfpq" section;
    // adopting it skips k-means at startup. The section's candidate
    // fingerprint and geometry are validated against what this engine
    // actually resolved — on any mismatch we train instead (slower, never
    // wrong).
    if (options.use_snapshot_index) {
      std::string_view bytes;
      if (const std::string* s = snapshot_.Section(kIvfSectionTag)) {
        bytes = *s;
      } else if (view_ != nullptr) {
        if (const std::string_view* s = view_->Section(kIvfSectionTag)) {
          bytes = *s;
        }
      }
      if (!bytes.empty()) {
        auto loaded = IvfIndex::Deserialize(bytes, matrix_,
                                            candidate_labels_crc(), ivf);
        if (loaded.ok()) {
          ivf_ = std::move(loaded).ValueOrDie();
          ivf_from_snapshot_ = true;
        } else {
          TDM_LOG(Warning) << "ignoring snapshot index section: "
                           << loaded.status().ToString();
        }
      }
    }
    if (ivf_ == nullptr) ivf_ = std::make_unique<IvfIndex>(matrix_, ivf);
  }
  if (options.threads > 1) {
    pool_ = std::make_unique<util::ThreadPool>(options.threads);
  }
  return util::Status::OK();
}

util::Result<QueryEngine> QueryEngine::BuildForPrefix(
    Snapshot snapshot, const std::string& prefix,
    QueryEngineOptions options) {
  std::vector<std::string> candidates;
  for (auto& label : snapshot.table.Labels()) {
    if (util::StartsWith(label, prefix)) {
      candidates.push_back(std::move(label));
    }
  }
  if (candidates.empty()) {
    return util::Status::NotFound(util::StrFormat(
        "snapshot '%s' has no labels with candidate prefix '%s'",
        snapshot.meta.scenario.c_str(), prefix.c_str()));
  }
  return Build(std::move(snapshot), std::move(candidates), options);
}

const Index& QueryEngine::IndexFor(SearchMode mode) const {
  if (mode == SearchMode::kApprox && ivf_ != nullptr) return *ivf_;
  return *exact_;
}

std::vector<ScoredMatch> QueryEngine::ToScored(
    const std::vector<match::Match>& matches) const {
  std::vector<ScoredMatch> out;
  out.reserve(matches.size());
  for (const auto& m : matches) {
    out.push_back(ScoredMatch{
        candidate_labels_[static_cast<size_t>(m.index)], m.index, m.score});
  }
  return out;
}

util::Result<std::vector<ScoredMatch>> QueryEngine::QueryVector(
    const std::vector<float>& vec, size_t k, SearchMode mode,
    size_t nprobe) const {
  if (vec.size() != static_cast<size_t>(snapshot_.table.dim())) {
    return util::Status::InvalidArgument(
        util::StrFormat("query vector has dim %zu, snapshot dim is %d",
                        vec.size(), snapshot_.table.dim()));
  }
  if (k == 0) k = options_.default_k;
  return SearchNormalized(IndexFor(mode), vec.data(), k, nullptr, nprobe);
}

const float* QueryEngine::LookupVector(const std::string& label,
                                       std::vector<float>* scratch) const {
  if (view_ != nullptr) {
    const int64_t row = view_->FindRow(label);
    if (row < 0) return nullptr;
    if (view_->aligned()) return view_->row(static_cast<size_t>(row));
    scratch->resize(static_cast<size_t>(view_->dim()));
    view_->CopyRow(static_cast<size_t>(row), scratch->data());
    return scratch->data();
  }
  const std::vector<float>* vec = snapshot_.table.Get(label);
  return vec == nullptr ? nullptr : vec->data();
}

std::vector<ScoredMatch> QueryEngine::SearchNormalized(
    const Index& index, const float* vec, size_t k,
    const std::vector<char>* allowed, size_t nprobe) const {
  // One copy total (the normalization scratch) — the same cost the
  // pre-mmap code paid through Index::SearchVec.
  std::vector<float> q(vec, vec + static_cast<size_t>(matrix_->dim()));
  NormalizeSlice(q.data(), matrix_->dim());
  if (nprobe > 0 && ivf_ != nullptr && &index == ivf_.get()) {
    return ToScored(ivf_->SearchWithNprobe(q.data(), k, nprobe, allowed));
  }
  return ToScored(index.Search(q.data(), k, allowed));
}

util::Result<std::vector<ScoredMatch>> QueryEngine::Query(
    const std::string& label, size_t k, SearchMode mode,
    size_t nprobe) const {
  std::vector<float> scratch;
  const float* vec = LookupVector(label, &scratch);
  if (vec == nullptr) {
    return util::Status::NotFound("no embedding for label '" + label + "'");
  }
  if (k == 0) k = options_.default_k;
  return SearchNormalized(IndexFor(mode), vec, k, nullptr, nprobe);
}

size_t QueryEngine::BuildMask(const std::vector<std::string>& allowed,
                              std::vector<char>* mask) const {
  mask->assign(candidate_labels_.size(), 0);
  size_t block_size = 0;
  for (const auto& a : allowed) {
    auto it = candidate_index_.find(a);
    if (it == candidate_index_.end()) continue;  // not a candidate: ignore
    if ((*mask)[static_cast<size_t>(it->second)] == 0) ++block_size;
    (*mask)[static_cast<size_t>(it->second)] = 1;
  }
  return block_size;
}

util::Result<std::vector<ScoredMatch>> QueryEngine::QueryFiltered(
    const std::string& label, const std::vector<std::string>& allowed,
    size_t k) const {
  std::vector<float> scratch;
  const float* vec = LookupVector(label, &scratch);
  if (vec == nullptr) {
    return util::Status::NotFound("no embedding for label '" + label + "'");
  }
  std::vector<char> mask;
  if (BuildMask(allowed, &mask) == 0) return std::vector<ScoredMatch>{};
  if (k == 0) k = options_.default_k;
  // Always the exact index: the IVF scan only sees the nprobe probed
  // cells, so a small allowed set (the blocker regime this API exists
  // for) could be missed entirely — and a blocked scan is O(|block|)
  // cheap anyway.
  return SearchNormalized(*exact_, vec, k, &mask);
}

util::Result<std::vector<ScoredMatch>> QueryEngine::QueryVectorFiltered(
    const std::vector<float>& vec, const std::vector<std::string>& allowed,
    size_t k) const {
  if (vec.size() != static_cast<size_t>(snapshot_.table.dim())) {
    return util::Status::InvalidArgument(
        util::StrFormat("query vector has dim %zu, snapshot dim is %d",
                        vec.size(), snapshot_.table.dim()));
  }
  std::vector<char> mask;
  if (BuildMask(allowed, &mask) == 0) return std::vector<ScoredMatch>{};
  if (k == 0) k = options_.default_k;
  return SearchNormalized(*exact_, vec.data(), k, &mask);
}

std::vector<util::Result<std::vector<ScoredMatch>>> QueryEngine::QueryBatch(
    const std::vector<std::string>& labels, size_t k, SearchMode mode,
    size_t nprobe) const {
  // Pre-size with per-slot placeholders, then let the shards overwrite
  // their ranges: no locking on the result vector, and the output order
  // never depends on the thread count.
  const size_t n = labels.size();
  std::vector<util::Result<std::vector<ScoredMatch>>> results(
      n, util::Status::Internal("query not executed"));
  const size_t shards = std::min(options_.threads, n);
  if (pool_ == nullptr || shards <= 1) {
    for (size_t i = 0; i < n; ++i) {
      results[i] = Query(labels[i], k, mode, nprobe);
    }
    return results;
  }

  // Contiguous chunks on the persistent pool; this batch tracks its own
  // completion so concurrent batches never wait on each other's tasks.
  // The decrement happens under the mutex: the caller can only observe
  // remaining == 0 after the finishing worker has released the lock, so
  // the stack-local sync state cannot be destroyed under a worker.
  std::vector<std::pair<size_t, size_t>> ranges;
  const size_t chunk = (n + shards - 1) / shards;
  for (size_t begin = 0; begin < n; begin += chunk) {
    ranges.emplace_back(begin, std::min(n, begin + chunk));
  }
  size_t remaining = ranges.size();
  std::mutex mu;
  std::condition_variable done;
  for (const auto& range : ranges) {
    pool_->Submit([this, &labels, &results, &remaining, &mu, &done, range,
                   k, mode, nprobe] {
      for (size_t i = range.first; i < range.second; ++i) {
        results[i] = Query(labels[i], k, mode, nprobe);
      }
      std::lock_guard<std::mutex> lock(mu);
      if (--remaining == 0) done.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  done.wait(lock, [&remaining] { return remaining == 0; });
  return results;
}

}  // namespace serve
}  // namespace tdmatch
