#include "core/experiment.h"

#include "eval/kfold.h"
#include "match/top_k.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace tdmatch {
namespace core {

util::Result<MethodRun> Experiment::Run(match::MatchMethod* method,
                                        const corpus::Scenario& scenario,
                                        const HarnessOptions& options) {
  MethodRun run;
  const size_t nq = scenario.first.NumDocs();
  run.rankings.resize(nq);
  run.scores.resize(nq);
  util::StopWatch watch;

  if (!method->supervised()) {
    watch.Reset();
    TDM_RETURN_NOT_OK(method->Fit(scenario, {}));
    run.train_seconds = watch.ElapsedSeconds();
    watch.Reset();
    for (size_t q = 0; q < nq; ++q) {
      run.scores[q] = method->ScoreCandidates(q);
      run.rankings[q] = match::TopK::FullRanking(run.scores[q]);
    }
    run.test_seconds_per_query =
        nq == 0 ? 0 : watch.ElapsedSeconds() / static_cast<double>(nq);
    return run;
  }

  // Supervised: k-fold CV; each query is scored exactly once, by the fold
  // where it is held out.
  auto folds = eval::KFold::Folds(nq, options.folds, options.seed);
  double total_test_seconds = 0;
  for (const auto& fold : folds) {
    watch.Reset();
    TDM_RETURN_NOT_OK(method->Fit(scenario, fold.train));
    run.train_seconds += watch.ElapsedSeconds();
    watch.Reset();
    for (int32_t q : fold.test) {
      run.scores[static_cast<size_t>(q)] =
          method->ScoreCandidates(static_cast<size_t>(q));
      run.rankings[static_cast<size_t>(q)] =
          match::TopK::FullRanking(run.scores[static_cast<size_t>(q)]);
    }
    total_test_seconds += watch.ElapsedSeconds();
  }
  run.test_seconds_per_query =
      nq == 0 ? 0 : total_test_seconds / static_cast<double>(nq);
  return run;
}

RankingReport Experiment::Report(const std::string& method_name,
                                 const MethodRun& run,
                                 const corpus::Scenario& scenario) {
  RankingReport r;
  r.method = method_name;
  r.mrr = eval::RankingMetrics::MRR(run.rankings, scenario.gold);
  r.map1 = eval::RankingMetrics::MAPAtK(run.rankings, scenario.gold, 1);
  r.map5 = eval::RankingMetrics::MAPAtK(run.rankings, scenario.gold, 5);
  r.map20 = eval::RankingMetrics::MAPAtK(run.rankings, scenario.gold, 20);
  r.hp1 = eval::RankingMetrics::HasPositiveAtK(run.rankings, scenario.gold, 1);
  r.hp5 = eval::RankingMetrics::HasPositiveAtK(run.rankings, scenario.gold, 5);
  r.hp20 =
      eval::RankingMetrics::HasPositiveAtK(run.rankings, scenario.gold, 20);
  return r;
}

std::string Experiment::FormatRow(const RankingReport& r) {
  return util::StrFormat(
      "%-10s  %.3f   %.3f %.3f %.3f   %.3f %.3f %.3f", r.method.c_str(),
      r.mrr, r.map1, r.map5, r.map20, r.hp1, r.hp5, r.hp20);
}

std::string Experiment::Header() {
  return util::StrFormat("%-10s  %-5s   %-5s %-5s %-5s   %-5s %-5s %-5s",
                         "Method", "MRR", "MAP@1", "MAP@5", "MAP20", "HP@1",
                         "HP@5", "HP@20");
}

}  // namespace core
}  // namespace tdmatch
