#ifndef TDMATCH_CORE_TDMATCH_H_
#define TDMATCH_CORE_TDMATCH_H_

#include <memory>
#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "embed/embedding_table.h"
#include "embed/pretrained_lexicon.h"
#include "embed/random_walk.h"
#include "embed/word2vec.h"
#include "graph/builder.h"
#include "graph/compression.h"
#include "graph/expansion.h"
#include "kb/external_resource.h"
#include "match/method.h"
#include "util/obs/phase_profile.h"
#include "util/result.h"

namespace tdmatch {
namespace core {

/// Compression strategy applied after (optional) expansion.
enum class CompressionMode { kNone, kMsp, kSsp, kSsumm, kRandomNode };

/// \brief End-to-end configuration of the TDmatch pipeline.
///
/// Defaults follow the paper's text-to-data setting (Skip-gram window 3);
/// call TextTaskDefaults() for the text-oriented setting (CBOW window 15).
/// Walk counts are scaled down from the paper's 100×30 so the benchmark
/// suite runs in seconds; the Fig. 6/7 sweeps explore the parameter space.
struct TDmatchOptions {
  graph::BuilderOptions builder;

  /// Synonym/variant merging via the pre-trained lexicon (§II-C). Requires
  /// a lexicon to be passed to the TDmatch constructor.
  bool use_synonym_merge = false;
  /// Cosine threshold for merging; the paper calibrates γ = 0.57 on
  /// WordNet synonym pairs.
  double gamma = 0.57;

  /// Graph expansion (Alg. 2). Requires an external resource.
  bool expand = false;
  graph::ExpansionOptions expansion;

  CompressionMode compression = CompressionMode::kNone;
  /// β of Alg. 3 (iterations = β · |V|), or the keep-ratio for
  /// kSsumm/kRandomNode.
  double compression_beta = 0.5;

  embed::RandomWalkOptions walks{.num_walks = 12, .walk_length = 15,
                                 .seed = 42, .threads = 4};
  embed::Word2VecOptions w2v{.dim = 48, .window = 3, .cbow = false,
                             .negative = 5, .initial_lr = 0.025,
                             .epochs = 2, .subsample = 0.0, .threads = 4,
                             .seed = 42};
  uint64_t seed = 42;

  /// Master worker-thread override: when nonzero, replaces the per-stage
  /// thread counts (walks.threads, w2v.threads) for the whole pipeline.
  /// Never changes the result — both the walker and the block-parallel
  /// trainer are bit-deterministic in the thread count — only the wall
  /// time.
  size_t threads = 0;

  /// Copy the trained document embeddings (both corpora's metadata-doc
  /// nodes, keyed by their graph labels `__D<corpus>:<doc>__`) into
  /// TDmatchResult::embeddings — the artifact the serving layer snapshots
  /// (serve/snapshot). Off by default: the offline benchmarks only need
  /// the scores.
  bool export_embeddings = false;

  /// CBOW window 15, the paper's configuration for text-oriented tasks.
  static TDmatchOptions TextTaskDefaults();
};

/// Node/edge counts of a pipeline stage.
struct GraphStats {
  size_t nodes = 0;
  size_t edges = 0;
};

/// \brief Output of one pipeline run: per-query candidate scores plus
/// timings and graph sizes for Tables VII/VIII and Fig. 8.
struct TDmatchResult {
  /// scores[q][c]: cosine between query q (first corpus) and candidate c.
  std::vector<std::vector<double>> scores;
  /// Trained doc embeddings, filled when options.export_embeddings is set
  /// (labels are graph::GraphBuilder::MetaDocLabel strings).
  embed::EmbeddingTable embeddings;
  GraphStats original;
  GraphStats expanded;    ///< equals original when expansion is off
  GraphStats compressed;  ///< equals expanded when compression is off
  double build_seconds = 0;
  double expand_seconds = 0;
  double compress_seconds = 0;
  double walk_seconds = 0;
  double train_seconds = 0;
  double match_seconds = 0;
  /// The same wall-clock phases as the *_seconds fields above (plus
  /// per-epoch "train_epoch" entries and "export" when embeddings are
  /// exported), in pipeline order — the structured form benchmark
  /// reporters and snapshot metadata consume.
  util::obs::PhaseProfile profile;
};

/// \brief The paper's system: joint graph over two corpora → node
/// embeddings from random walks → unsupervised cosine matching (Fig. 3).
class TDmatch {
 public:
  /// \param resource external KB for expansion (may be null when
  ///   options.expand is false).
  /// \param lexicon pre-trained lexicon for synonym merging (may be null
  ///   when options.use_synonym_merge is false).
  explicit TDmatch(TDmatchOptions options,
                   const kb::ExternalResource* resource = nullptr,
                   const embed::PretrainedLexicon* lexicon = nullptr);

  /// Runs the full pipeline; queries are the documents of `first`.
  util::Result<TDmatchResult> Run(const corpus::Corpus& first,
                                  const corpus::Corpus& second) const;

  const TDmatchOptions& options() const { return options_; }

 private:
  TDmatchOptions options_;
  const kb::ExternalResource* resource_;
  const embed::PretrainedLexicon* lexicon_;
};

/// \brief match::MatchMethod adapter for TDmatch (the "W-RW" / "W-RW-EX"
/// rows of the evaluation).
class TDmatchMethod : public match::MatchMethod {
 public:
  TDmatchMethod(std::string name, TDmatchOptions options,
                const kb::ExternalResource* resource = nullptr,
                const embed::PretrainedLexicon* lexicon = nullptr)
      : name_(std::move(name)),
        engine_(std::move(options), resource, lexicon) {}

  util::Status Fit(const corpus::Scenario& scenario,
                   const std::vector<int32_t>& train_queries) override;
  std::vector<double> ScoreCandidates(size_t query_index) const override;
  std::string name() const override { return name_; }

  /// Full result of the last Fit (timings, graph sizes).
  const TDmatchResult& last_result() const { return result_; }

 private:
  std::string name_;
  TDmatch engine_;
  TDmatchResult result_;
};

}  // namespace core
}  // namespace tdmatch

#endif  // TDMATCH_CORE_TDMATCH_H_
