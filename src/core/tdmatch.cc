#include "core/tdmatch.h"

#include <unordered_set>

#include "embed/embedding_table.h"
#include "match/top_k.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace tdmatch {
namespace core {

TDmatchOptions TDmatchOptions::TextTaskDefaults() {
  TDmatchOptions o;
  o.w2v.cbow = true;
  o.w2v.window = 15;
  return o;
}

TDmatch::TDmatch(TDmatchOptions options, const kb::ExternalResource* resource,
                 const embed::PretrainedLexicon* lexicon)
    : options_(std::move(options)), resource_(resource), lexicon_(lexicon) {}

namespace {

/// Collects every unique term (1..n-gram) of both corpora — the candidate
/// set for synonym merging.
std::vector<std::string> CollectTerms(const corpus::Corpus& a,
                                      const corpus::Corpus& b,
                                      const text::Preprocessor& pp) {
  std::unordered_set<std::string> seen;
  auto add_corpus = [&](const corpus::Corpus& c) {
    if (c.type() == corpus::CorpusType::kTable) {
      const corpus::Table& t = *c.table();
      for (size_t r = 0; r < t.NumRows(); ++r) {
        for (size_t col = 0; col < t.NumColumns(); ++col) {
          for (auto& term : pp.Terms(t.cell(r, col))) seen.insert(term);
        }
      }
    } else {
      for (size_t i = 0; i < c.NumDocs(); ++i) {
        for (auto& term : pp.Terms(c.DocText(i))) seen.insert(term);
      }
    }
  };
  add_corpus(a);
  add_corpus(b);
  return std::vector<std::string>(seen.begin(), seen.end());
}

GraphStats StatsOf(const graph::Graph& g) {
  return GraphStats{g.NumNodes(), g.NumEdges()};
}

}  // namespace

util::Result<TDmatchResult> TDmatch::Run(const corpus::Corpus& first,
                                         const corpus::Corpus& second) const {
  TDmatchResult result;
  util::StopWatch watch;

  // --- Synonym merge map (§II-C) ------------------------------------------
  graph::BuilderOptions builder_options = options_.builder;
  graph::MergeMap merge_map;
  text::Preprocessor pp(builder_options.preprocess);
  if (options_.use_synonym_merge) {
    if (lexicon_ == nullptr) {
      return util::Status::InvalidArgument(
          "use_synonym_merge requires a PretrainedLexicon");
    }
    merge_map =
        lexicon_->BuildMergeMap(CollectTerms(first, second, pp),
                                options_.gamma);
    builder_options.merge_map = &merge_map;
  }

  // --- Graph creation (Alg. 1) --------------------------------------------
  watch.Reset();
  graph::GraphBuilder builder(builder_options);
  TDM_ASSIGN_OR_RETURN(graph::Graph g, builder.Build(first, second));
  result.build_seconds = watch.ElapsedSeconds();
  result.profile.Add("graph_build", result.build_seconds);
  result.original = StatsOf(g);

  // --- Expansion (Alg. 2) --------------------------------------------------
  if (options_.expand) {
    if (resource_ == nullptr) {
      return util::Status::InvalidArgument(
          "expand requires an ExternalResource");
    }
    watch.Reset();
    auto normalize = [&pp](const std::string& raw) {
      return graph::GraphBuilder::NormalizeLabel(pp, raw);
    };
    g = graph::ExpandGraph(g, *resource_, options_.expansion, normalize);
    result.expand_seconds = watch.ElapsedSeconds();
    result.profile.Add("expand", result.expand_seconds);
  }
  result.expanded = StatsOf(g);

  // --- Compression (Alg. 3 / baselines) ------------------------------------
  if (options_.compression != CompressionMode::kNone) {
    watch.Reset();
    util::Rng rng(options_.seed ^ 0xc0117);
    switch (options_.compression) {
      case CompressionMode::kMsp:
        g = graph::MspCompress(g, options_.compression_beta, &rng);
        break;
      case CompressionMode::kSsp:
        g = graph::SspCompress(g, options_.compression_beta, &rng);
        break;
      case CompressionMode::kSsumm:
        g = graph::SsummCompress(g, options_.compression_beta, &rng);
        break;
      case CompressionMode::kRandomNode:
        g = graph::RandomNodeSample(g, options_.compression_beta, &rng);
        break;
      case CompressionMode::kNone:
        break;
    }
    result.compress_seconds = watch.ElapsedSeconds();
    result.profile.Add("compress", result.compress_seconds);
  }
  result.compressed = StatsOf(g);

  if (g.NumNodes() == 0) {
    return util::Status::Internal("pipeline produced an empty graph");
  }

  // --- Random walks + Word2Vec (Alg. 4) -------------------------------------
  watch.Reset();
  // Expansion/compression may have produced a building-state graph; the
  // walker's hot loop wants the flat CSR adjacency (GraphBuilder already
  // finalizes, so this is a no-op on the plain pipeline).
  g.Finalize();
  embed::RandomWalkOptions walk_options = options_.walks;
  walk_options.seed ^= options_.seed;
  if (options_.threads != 0) walk_options.threads = options_.threads;
  embed::SentenceCorpus walks = embed::RandomWalker::GenerateCorpus(
      g, walk_options);
  result.walk_seconds = watch.ElapsedSeconds();
  result.profile.Add("walks", result.walk_seconds);

  watch.Reset();
  embed::Word2VecOptions w2v_options = options_.w2v;
  w2v_options.seed ^= options_.seed;
  if (options_.threads != 0) w2v_options.threads = options_.threads;
  embed::Word2Vec w2v(w2v_options);
  TDM_RETURN_NOT_OK(w2v.Train(walks, g.NumNodes()));
  result.train_seconds = watch.ElapsedSeconds();
  result.profile.Add("train", result.train_seconds);
  for (double epoch_s : w2v.epoch_seconds()) {
    result.profile.Add("train_epoch", epoch_s);
  }

  // --- Matching (§IV-B) ------------------------------------------------------
  watch.Reset();
  auto doc_vector = [&](int corpus_idx, size_t doc) -> std::vector<float> {
    graph::NodeId id =
        g.FindNode(graph::GraphBuilder::MetaDocLabel(corpus_idx, doc));
    if (id == graph::kInvalidNode) return {};
    return w2v.VectorCopy(id);
  };
  std::vector<std::vector<float>> candidates(second.NumDocs());
  for (size_t c = 0; c < second.NumDocs(); ++c) {
    candidates[c] = doc_vector(1, c);
  }
  result.scores.resize(first.NumDocs());
  for (size_t q = 0; q < first.NumDocs(); ++q) {
    std::vector<float> qv = doc_vector(0, q);
    result.scores[q] = match::TopK::ScoreAll(qv, candidates);
  }
  result.match_seconds = watch.ElapsedSeconds();
  result.profile.Add("match", result.match_seconds);

  // --- Serving export --------------------------------------------------------
  // Doc nodes that survived compression keep their trained vector under
  // their graph label; the serving layer snapshots this table and answers
  // queries from it without re-running the pipeline.
  if (options_.export_embeddings) {
    watch.Reset();
    result.embeddings = embed::EmbeddingTable(w2v.dim());
    for (graph::NodeId id : g.MetadataDocNodes()) {
      result.embeddings.Put(g.node(id).label, w2v.VectorCopy(id));
    }
    result.profile.Add("export", watch.ElapsedSeconds());
  }
  return result;
}

util::Status TDmatchMethod::Fit(const corpus::Scenario& scenario,
                                const std::vector<int32_t>& train_queries) {
  (void)train_queries;  // unsupervised: gold labels are never consulted
  TDM_ASSIGN_OR_RETURN(result_,
                       engine_.Run(scenario.first, scenario.second));
  return util::Status::OK();
}

std::vector<double> TDmatchMethod::ScoreCandidates(size_t query_index) const {
  TDM_CHECK_LT(query_index, result_.scores.size());
  return result_.scores[query_index];
}

}  // namespace core
}  // namespace tdmatch
