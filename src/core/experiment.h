#ifndef TDMATCH_CORE_EXPERIMENT_H_
#define TDMATCH_CORE_EXPERIMENT_H_

#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "eval/metrics.h"
#include "match/method.h"
#include "util/result.h"

namespace tdmatch {
namespace core {

/// Harness configuration.
struct HarnessOptions {
  /// Folds for supervised methods (paper: 5-fold cross validation).
  size_t folds = 5;
  uint64_t seed = 4242;
};

/// Everything a bench needs from one method run.
struct MethodRun {
  /// Full candidate ranking per query (empty for queries a supervised
  /// method was trained on — they are excluded from its evaluation).
  std::vector<eval::Ranking> rankings;
  /// Raw scores per query (same sparsity as rankings); kept for the
  /// Fig. 10 score-combination experiment.
  std::vector<std::vector<double>> scores;
  double train_seconds = 0;
  /// Average seconds per query at test time (Table VII granularity).
  double test_seconds_per_query = 0;
};

/// The metric columns of Tables I/II/IV/V/VI.
struct RankingReport {
  std::string method;
  double mrr = 0;
  double map1 = 0, map5 = 0, map20 = 0;
  double hp1 = 0, hp5 = 0, hp20 = 0;
};

/// \brief Runs matching methods under the paper's protocol: unsupervised
/// methods fit once on the whole scenario; supervised methods run k-fold
/// cross validation and are only evaluated on held-out queries.
class Experiment {
 public:
  /// Executes `method` on `scenario` and returns its rankings + timings.
  static util::Result<MethodRun> Run(match::MatchMethod* method,
                                     const corpus::Scenario& scenario,
                                     const HarnessOptions& options = {});

  /// Computes the standard ranking metrics from a MethodRun.
  static RankingReport Report(const std::string& method_name,
                              const MethodRun& run,
                              const corpus::Scenario& scenario);

  /// Formats a report as a paper-style table row.
  static std::string FormatRow(const RankingReport& r);

  /// Header matching FormatRow.
  static std::string Header();
};

}  // namespace core
}  // namespace tdmatch

#endif  // TDMATCH_CORE_EXPERIMENT_H_
