#include "util/csv.h"

#include <fstream>
#include <sstream>

namespace tdmatch {
namespace util {

Result<std::vector<std::string>> Csv::ParseLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        cur.push_back(c);
        ++i;
      }
    } else {
      if (c == '"') {
        if (!cur.empty()) {
          return Status::InvalidArgument("quote inside unquoted field: " +
                                         line);
        }
        in_quotes = true;
        ++i;
      } else if (c == ',') {
        fields.push_back(std::move(cur));
        cur.clear();
        ++i;
      } else if (c == '\r') {
        ++i;  // tolerate CRLF
      } else {
        cur.push_back(c);
        ++i;
      }
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted field: " + line);
  }
  fields.push_back(std::move(cur));
  return fields;
}

Result<std::vector<std::vector<std::string>>> Csv::ParseBuffer(
    const std::string& buffer) {
  std::vector<std::vector<std::string>> rows;
  std::istringstream in(buffer);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line == "\r") continue;
    TDM_ASSIGN_OR_RETURN(auto fields, ParseLine(line));
    rows.push_back(std::move(fields));
  }
  return rows;
}

Result<std::vector<std::vector<std::string>>> Csv::ReadFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseBuffer(buf.str());
}

std::string Csv::EscapeField(const std::string& field) {
  bool needs_quote = false;
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quote = true;
      break;
    }
  }
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string Csv::FormatLine(const std::vector<std::string>& fields) {
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += EscapeField(fields[i]);
  }
  return out;
}

Status Csv::WriteFile(const std::string& path,
                      const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  for (const auto& row : rows) {
    out << FormatLine(row) << "\n";
  }
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

}  // namespace util
}  // namespace tdmatch
