#ifndef TDMATCH_UTIL_TIMER_H_
#define TDMATCH_UTIL_TIMER_H_

#include <chrono>

namespace tdmatch {
namespace util {

/// \brief Wall-clock stopwatch used by the benchmark harness (Table VII,
/// Fig. 8).
class StopWatch {
 public:
  StopWatch() : start_(Clock::now()) {}

  /// Restarts timing from now.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last Reset.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction / last Reset.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace util
}  // namespace tdmatch

#endif  // TDMATCH_UTIL_TIMER_H_
