#ifndef TDMATCH_UTIL_STATUS_H_
#define TDMATCH_UTIL_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace tdmatch {
namespace util {

/// \brief Error categories used across the library.
///
/// The library does not throw exceptions across public API boundaries;
/// all fallible operations return a Status or a Result<T> (see result.h),
/// following the Arrow / RocksDB idiom.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kIOError = 5,
  kUnimplemented = 6,
  kInternal = 7,
};

/// \brief Returns a human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// \brief Operation outcome: either OK or an error code with a message.
///
/// Status is cheap to copy in the OK case (a null pointer); error states
/// carry a heap-allocated code+message record.
class Status {
 public:
  /// Creates an OK status.
  Status() = default;

  /// Creates a status with the given code and message. A kOk code yields
  /// an OK status and the message is dropped.
  Status(StatusCode code, std::string msg);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True when the operation succeeded.
  bool ok() const { return state_ == nullptr; }

  /// The status code (kOk when ok()).
  StatusCode code() const {
    return state_ == nullptr ? StatusCode::kOk : state_->code;
  }

  /// The error message; empty when ok().
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ == nullptr ? kEmpty : state_->msg;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsUnimplemented() const { return code() == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::unique_ptr<State> state_;
};

}  // namespace util
}  // namespace tdmatch

/// Propagates a non-OK Status to the caller.
#define TDM_RETURN_NOT_OK(expr)                  \
  do {                                           \
    ::tdmatch::util::Status _st = (expr);        \
    if (!_st.ok()) return _st;                   \
  } while (false)

#define TDM_CONCAT_IMPL(x, y) x##y
#define TDM_CONCAT(x, y) TDM_CONCAT_IMPL(x, y)

/// Evaluates a Result<T> expression; on error returns the Status,
/// otherwise moves the value into `lhs`.
#define TDM_ASSIGN_OR_RETURN(lhs, expr)                       \
  auto TDM_CONCAT(_res_, __LINE__) = (expr);                  \
  if (!TDM_CONCAT(_res_, __LINE__).ok())                      \
    return TDM_CONCAT(_res_, __LINE__).status();              \
  lhs = std::move(TDM_CONCAT(_res_, __LINE__)).ValueOrDie()

#endif  // TDMATCH_UTIL_STATUS_H_
