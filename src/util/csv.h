#ifndef TDMATCH_UTIL_CSV_H_
#define TDMATCH_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace tdmatch {
namespace util {

/// \brief RFC-4180-style CSV support (quoted fields, embedded commas,
/// doubled quotes, CR/LF line ends).
///
/// The scenario generators can persist datasets to disk and the loaders read
/// them back; this keeps experiments inspectable by humans.
class Csv {
 public:
  /// Parses one CSV record (no trailing newline) into fields.
  static Result<std::vector<std::string>> ParseLine(const std::string& line);

  /// Parses a whole buffer into records; empty lines are skipped.
  static Result<std::vector<std::vector<std::string>>> ParseBuffer(
      const std::string& buffer);

  /// Reads and parses a CSV file.
  static Result<std::vector<std::vector<std::string>>> ReadFile(
      const std::string& path);

  /// Escapes a field (quotes when it contains comma/quote/newline).
  static std::string EscapeField(const std::string& field);

  /// Serializes one record.
  static std::string FormatLine(const std::vector<std::string>& fields);

  /// Writes records to a file, one per line.
  static Status WriteFile(const std::string& path,
                          const std::vector<std::vector<std::string>>& rows);
};

}  // namespace util
}  // namespace tdmatch

#endif  // TDMATCH_UTIL_CSV_H_
