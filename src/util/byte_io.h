#ifndef TDMATCH_UTIL_BYTE_IO_H_
#define TDMATCH_UTIL_BYTE_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace tdmatch {
namespace util {

/// \brief Little helpers for the length-prefixed binary wire format shared
/// by the snapshot writer (serve/snapshot.cc) and the serialized index
/// sections (serve/ivf_index.cc): fixed-width integers appended raw in
/// host byte order (the snapshot header's endianness marker detects
/// foreign files), strings as u32 length + bytes.
void AppendU32(std::string* out, uint32_t v);
void AppendU64(std::string* out, uint64_t v);
/// Fails when `s` exceeds the u32 length prefix.
Status AppendLengthPrefixed(std::string* out, std::string_view s);

/// \brief Bounds-checked sequential reader over an in-memory byte slice.
/// Every primitive read fails loudly instead of running past the end, so
/// truncated or hostile buffers surface as descriptive errors, never as
/// garbage values or out-of-bounds reads. All multi-byte reads go through
/// memcpy, so the underlying buffer may have any alignment (mmap'd
/// sections included).
class ByteCursor {
 public:
  ByteCursor(const char* data, size_t size) : data_(data), size_(size) {}
  explicit ByteCursor(std::string_view bytes)
      : ByteCursor(bytes.data(), bytes.size()) {}

  Status ReadU32(uint32_t* v) { return ReadRaw(v, sizeof(*v)); }
  Status ReadU64(uint64_t* v) { return ReadRaw(v, sizeof(*v)); }

  /// Reads a u32 length prefix + that many bytes into `s`.
  Status ReadString(std::string* s);

  /// Reads `count` raw IEEE-754 f32 values.
  Status ReadFloats(float* out, size_t count) {
    return ReadRaw(out, count * sizeof(float));
  }

  /// Reads `bytes` raw bytes into `out`.
  Status ReadBytes(void* out, size_t bytes) { return ReadRaw(out, bytes); }

  size_t Remaining() const { return size_ - pos_; }

 private:
  Status ReadRaw(void* out, size_t bytes);

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace util
}  // namespace tdmatch

#endif  // TDMATCH_UTIL_BYTE_IO_H_
