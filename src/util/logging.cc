#include "util/logging.h"

#include <atomic>

namespace tdmatch {
namespace util {

namespace {
std::atomic<int> g_threshold{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level),
      enabled_(static_cast<int>(level) >= g_threshold.load() ||
               level == LogLevel::kFatal) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

void LogMessage::SetThreshold(LogLevel level) {
  g_threshold.store(static_cast<int>(level));
}

LogLevel LogMessage::Threshold() {
  return static_cast<LogLevel>(g_threshold.load());
}

}  // namespace util
}  // namespace tdmatch
