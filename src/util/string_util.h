#ifndef TDMATCH_UTIL_STRING_UTIL_H_
#define TDMATCH_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace tdmatch {
namespace util {

/// Splits on a single delimiter character; empty pieces are kept unless
/// `skip_empty` is set.
std::vector<std::string> Split(std::string_view s, char delim,
                               bool skip_empty = false);

/// Splits on any ASCII whitespace; empty pieces are never produced.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins pieces with a separator.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// ASCII lower-casing (bytes >= 0x80 are passed through untouched).
std::string ToLower(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// True when every character is an ASCII digit, optionally after a sign and
/// with at most one decimal point ("-3.14", "42").
bool IsNumeric(std::string_view s);

/// Parses a double; returns false on malformed input.
bool ParseDouble(std::string_view s, double* out);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Levenshtein edit distance (O(|a|·|b|), small-string use only).
size_t EditDistance(std::string_view a, std::string_view b);

}  // namespace util
}  // namespace tdmatch

#endif  // TDMATCH_UTIL_STRING_UTIL_H_
