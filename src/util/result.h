#ifndef TDMATCH_UTIL_RESULT_H_
#define TDMATCH_UTIL_RESULT_H_

#include <optional>
#include <utility>

#include "util/logging.h"
#include "util/status.h"

namespace tdmatch {
namespace util {

/// \brief Holds either a value of type T or an error Status.
///
/// Mirrors arrow::Result. Construct implicitly from T (success) or from a
/// non-OK Status (failure). Accessing the value of an errored Result aborts
/// in debug builds via TDM_CHECK.
template <typename T>
class Result {
 public:
  /// Success: wraps a value.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Failure: wraps a non-OK status. Passing an OK status is a programming
  /// error and is converted to Internal.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  /// True when a value is present.
  bool ok() const { return value_.has_value(); }

  /// The error status; OK when a value is present.
  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : status_;
  }

  /// Returns the value; must only be called when ok().
  const T& ValueOrDie() const& {
    TDM_CHECK(ok()) << "ValueOrDie on errored Result: " << status_.ToString();
    return *value_;
  }
  T& ValueOrDie() & {
    TDM_CHECK(ok()) << "ValueOrDie on errored Result: " << status_.ToString();
    return *value_;
  }
  T ValueOrDie() && {
    TDM_CHECK(ok()) << "ValueOrDie on errored Result: " << status_.ToString();
    return std::move(*value_);
  }

  /// Returns the value or `fallback` when errored.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  /// Dereference sugar.
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace util
}  // namespace tdmatch

#endif  // TDMATCH_UTIL_RESULT_H_
