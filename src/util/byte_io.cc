#include "util/byte_io.h"

#include <cstring>

#include "util/string_util.h"

namespace tdmatch {
namespace util {

void AppendU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

Status AppendLengthPrefixed(std::string* out, std::string_view s) {
  if (s.size() > UINT32_MAX) {
    return Status::InvalidArgument("string too long for u32 length prefix");
  }
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
  return Status::OK();
}

Status ByteCursor::ReadString(std::string* s) {
  uint32_t len = 0;
  TDM_RETURN_NOT_OK(ReadU32(&len));
  if (len > Remaining()) {
    return Status::IOError(
        StrFormat("truncated: string of %u bytes with %zu bytes left", len,
                  Remaining()));
  }
  s->assign(data_ + pos_, len);
  pos_ += len;
  return Status::OK();
}

Status ByteCursor::ReadRaw(void* out, size_t bytes) {
  if (bytes > Remaining()) {
    return Status::IOError(StrFormat(
        "truncated: need %zu bytes, %zu left", bytes, Remaining()));
  }
  std::memcpy(out, data_ + pos_, bytes);
  pos_ += bytes;
  return Status::OK();
}

}  // namespace util
}  // namespace tdmatch
