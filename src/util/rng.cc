#include "util/rng.h"

#include <cmath>

#include "util/logging.h"

namespace tdmatch {
namespace util {

namespace {
inline uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (int i = 0; i < 4; ++i) s_[i] = SplitMix64(&x);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  TDM_DCHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  TDM_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::Gaussian() {
  double u1 = Uniform();
  double u2 = Uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  constexpr double kPi = 3.14159265358979323846;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * kPi * u2);
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

std::vector<size_t> Rng::SampleIndices(size_t n, size_t k) {
  if (k > n) k = n;
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  // Partial Fisher–Yates: first k entries become the sample.
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(UniformInt(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xa5a5a5a5deadbeefULL); }

}  // namespace util
}  // namespace tdmatch
