#include "util/json.h"

#include <cctype>
#include <charconv>
#include <cmath>

#include "util/string_util.h"

namespace tdmatch {
namespace util {

namespace {

/// Character-level scanner shared by the flat-record parser (the JSONL
/// loader contract, moved here from corpus/loader.cc with its behavior and
/// error messages intact) and the general value parser (the HTTP front
/// end). Strings support the standard escapes; \uXXXX decodes to UTF-8
/// with UTF-16 surrogate pairs combined and lone surrogates rejected;
/// numbers keep their source spelling and are validated via ParseDouble.
class JsonScanner {
 public:
  explicit JsonScanner(std::string_view s) : s_(s) {}

  Status Error(const std::string& what) {
    return Status::InvalidArgument(
        StrFormat("%s at offset %zu", what.c_str(), pos_));
  }

  void SkipSpace() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\r' ||
            s_[pos_] == '\n')) {
      ++pos_;
    }
  }

  bool AtEnd() const { return pos_ >= s_.size(); }
  char Peek() const { return s_[pos_]; }
  size_t pos() const { return pos_; }

  bool Consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (s_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Status CheckEnd(const char* what) {
    SkipSpace();
    if (pos_ != s_.size()) {
      return Error(std::string("trailing content after ") + what);
    }
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) break;
      char esc = s_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          uint32_t cp = 0;
          TDM_RETURN_NOT_OK(ParseHex4(&cp));
          // Non-BMP characters arrive as UTF-16 surrogate pairs (that is
          // how json.dumps escapes an emoji); decode the pair to one code
          // point rather than emitting invalid CESU-8, and reject lone
          // surrogates like every other malformed input.
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (pos_ + 2 > s_.size() || s_[pos_] != '\\' ||
                s_[pos_ + 1] != 'u') {
              return Error("high surrogate without a \\u low surrogate");
            }
            pos_ += 2;
            uint32_t lo = 0;
            TDM_RETURN_NOT_OK(ParseHex4(&lo));
            if (lo < 0xDC00 || lo > 0xDFFF) {
              return Error("high surrogate followed by a non-low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("lone low surrogate");
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Error(StrFormat("bad escape '\\%c'", esc));
      }
    }
    return Error("unterminated string");
  }

  /// Number token: keeps the source spelling, validates the character set
  /// and the spelling via ParseDouble. Cursor must sit on the first
  /// character of the number.
  Status ParseNumberToken(std::string* spelling, double* value) {
    size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    *spelling = std::string(s_.substr(start, pos_ - start));
    if (!ParseDouble(*spelling, value)) return Error("malformed number");
    return Status::OK();
  }

 private:
  void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  /// The four hex digits of a \uXXXX escape (cursor already past "\u").
  Status ParseHex4(uint32_t* cp) {
    if (pos_ + 4 > s_.size()) return Error("truncated \\u escape");
    *cp = 0;
    for (int i = 0; i < 4; ++i) {
      char h = s_[pos_++];
      *cp <<= 4;
      if (h >= '0' && h <= '9') *cp |= static_cast<uint32_t>(h - '0');
      else if (h >= 'a' && h <= 'f')
        *cp |= static_cast<uint32_t>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F')
        *cp |= static_cast<uint32_t>(h - 'A' + 10);
      else return Error("bad \\u escape");
    }
    return Status::OK();
  }

  std::string_view s_;
  size_t pos_ = 0;
};

Status ParseScalarToString(JsonScanner* sc, std::string* out) {
  if (sc->AtEnd()) return sc->Error("expected a value");
  char c = sc->Peek();
  if (c == '"') return sc->ParseString(out);
  if (c == '{' || c == '[') {
    return sc->Error("nested values are not supported (records must be flat)");
  }
  if (sc->ConsumeWord("true")) { *out = "true"; return Status::OK(); }
  if (sc->ConsumeWord("false")) { *out = "false"; return Status::OK(); }
  if (sc->ConsumeWord("null")) { out->clear(); return Status::OK(); }
  double ignored = 0;
  return sc->ParseNumberToken(out, &ignored);
}

Status ParseValue(JsonScanner* sc, JsonValue* out, size_t depth) {
  sc->SkipSpace();
  if (sc->AtEnd()) return sc->Error("expected a value");
  const char c = sc->Peek();
  if (c == '{' || c == '[') {
    if (depth == 0) return sc->Error("nesting too deep");
    if (sc->Consume('{')) {
      *out = JsonValue::Object();
      sc->SkipSpace();
      if (sc->Consume('}')) return Status::OK();
      for (;;) {
        sc->SkipSpace();
        std::string key;
        TDM_RETURN_NOT_OK(sc->ParseString(&key));
        sc->SkipSpace();
        if (!sc->Consume(':')) return sc->Error("expected ':' after key");
        JsonValue value;
        TDM_RETURN_NOT_OK(ParseValue(sc, &value, depth - 1));
        out->members().emplace_back(std::move(key), std::move(value));
        sc->SkipSpace();
        if (sc->Consume(',')) continue;
        if (sc->Consume('}')) return Status::OK();
        return sc->Error("expected ',' or '}'");
      }
    }
    sc->Consume('[');
    *out = JsonValue::Array();
    sc->SkipSpace();
    if (sc->Consume(']')) return Status::OK();
    for (;;) {
      JsonValue item;
      TDM_RETURN_NOT_OK(ParseValue(sc, &item, depth - 1));
      out->items().push_back(std::move(item));
      sc->SkipSpace();
      if (sc->Consume(',')) continue;
      if (sc->Consume(']')) return Status::OK();
      return sc->Error("expected ',' or ']'");
    }
  }
  if (c == '"') {
    std::string s;
    TDM_RETURN_NOT_OK(sc->ParseString(&s));
    *out = JsonValue::String(std::move(s));
    return Status::OK();
  }
  if (sc->ConsumeWord("true")) { *out = JsonValue::Bool(true); return Status::OK(); }
  if (sc->ConsumeWord("false")) { *out = JsonValue::Bool(false); return Status::OK(); }
  if (sc->ConsumeWord("null")) { *out = JsonValue(); return Status::OK(); }
  std::string spelling;
  double value = 0;
  TDM_RETURN_NOT_OK(sc->ParseNumberToken(&spelling, &value));
  *out = JsonValue::Number(value, std::move(spelling));
  return Status::OK();
}

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& kv : members_) {
    if (kv.first == key) return &kv.second;
  }
  return nullptr;
}

Result<JsonValue> JsonParse(std::string_view text, size_t max_depth) {
  JsonScanner sc(text);
  JsonValue value;
  TDM_RETURN_NOT_OK(ParseValue(&sc, &value, max_depth));
  TDM_RETURN_NOT_OK(sc.CheckEnd("value"));
  return value;
}

Status JsonParseFlatRecord(std::string_view line, JsonFlatRecord* out) {
  JsonScanner sc(line);
  sc.SkipSpace();
  if (!sc.Consume('{')) return sc.Error("expected '{'");
  sc.SkipSpace();
  if (sc.Consume('}')) return sc.CheckEnd("record");
  for (;;) {
    sc.SkipSpace();
    std::string key;
    TDM_RETURN_NOT_OK(sc.ParseString(&key));
    sc.SkipSpace();
    if (!sc.Consume(':')) return sc.Error("expected ':' after key");
    sc.SkipSpace();
    std::string value;
    TDM_RETURN_NOT_OK(ParseScalarToString(&sc, &value));
    out->emplace_back(std::move(key), std::move(value));
    sc.SkipSpace();
    if (sc.Consume(',')) continue;
    if (sc.Consume('}')) return sc.CheckEnd("record");
    return sc.Error("expected ',' or '}'");
  }
}

void JsonAppendQuoted(std::string_view s, std::string* out) {
  out->push_back('"');
  // Most strings need no escaping at all: copy maximal clean runs in one
  // append instead of pushing characters one at a time (keys and values
  // on the hot JSONL-log path go through here for every field).
  size_t start = 0;
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c != '"' && c != '\\' && static_cast<unsigned char>(c) >= 0x20) {
      continue;
    }
    out->append(s, start, i - start);
    start = i + 1;
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\b': out->append("\\b"); break;
      case '\f': out->append("\\f"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default: out->append(StrFormat("\\u%04x", c));
    }
  }
  out->append(s, start, s.size() - start);
  out->push_back('"');
}

JsonWriter& JsonWriter::Open(char c) {
  Separate();
  out_.push_back(c);
  has_element_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::Close(char c) {
  if (!has_element_.empty()) has_element_.pop_back();
  out_.push_back(c);
  return *this;
}

void JsonWriter::Separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_element_.empty()) {
    if (has_element_.back() != 0) out_.push_back(',');
    has_element_.back() = 1;
  }
}

JsonWriter& JsonWriter::Key(std::string_view k) {
  Separate();
  JsonAppendQuoted(k, &out_);
  out_.push_back(':');
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view s) {
  Separate();
  JsonAppendQuoted(s, &out_);
  return *this;
}

// Number values format into a stack buffer and append in place:
// StrFormat would cost a second vsnprintf sizing pass plus a temporary
// heap string per number, which dominates hot writers (the per-request
// slow-query log, bench row emission).
JsonWriter& JsonWriter::Value(double d) {
  if (!std::isfinite(d)) return Null();
  Separate();
  char buf[32];
#if defined(__cpp_lib_to_chars) && __cpp_lib_to_chars >= 201611L
  // Shortest round-trippable spelling — strtod reproduces the exact bits
  // (same guarantee as %.17g) at a fraction of the formatting cost.
  const auto r = std::to_chars(buf, buf + sizeof(buf), d);
  if (r.ec == std::errc()) out_.append(buf, r.ptr);
#else
  const int n = std::snprintf(buf, sizeof(buf), "%.17g", d);
  if (n > 0) out_.append(buf, static_cast<size_t>(n));
#endif
  return *this;
}

JsonWriter& JsonWriter::Value(bool b) {
  Separate();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t i) {
  Separate();
  char buf[24];
  const auto r = std::to_chars(buf, buf + sizeof(buf), i);
  out_.append(buf, r.ptr);
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t u) {
  Separate();
  char buf[24];
  const auto r = std::to_chars(buf, buf + sizeof(buf), u);
  out_.append(buf, r.ptr);
  return *this;
}

JsonWriter& JsonWriter::Null() {
  Separate();
  out_ += "null";
  return *this;
}

}  // namespace util
}  // namespace tdmatch
