#include "util/status.h"

namespace tdmatch {
namespace util {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string msg) {
  if (code != StatusCode::kOk) {
    state_ = std::make_unique<State>(State{code, std::move(msg)});
  }
}

Status::Status(const Status& other) {
  if (other.state_ != nullptr) {
    state_ = std::make_unique<State>(*other.state_);
  }
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    state_ = other.state_ == nullptr ? nullptr
                                     : std::make_unique<State>(*other.state_);
  }
  return *this;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace util
}  // namespace tdmatch
