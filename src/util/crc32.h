#ifndef TDMATCH_UTIL_CRC32_H_
#define TDMATCH_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace tdmatch {
namespace util {

/// \brief CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the checksum
/// used by zip/png. Protects the binary model snapshots (serve/snapshot)
/// against bit rot and truncation; not a cryptographic hash.
///
/// `seed` is the running CRC of a previous chunk, so large payloads can be
/// checksummed incrementally:
///   uint32_t c = Crc32(a, na);
///   c = Crc32(b, nb, c);   // == Crc32 of a||b
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

}  // namespace util
}  // namespace tdmatch

#endif  // TDMATCH_UTIL_CRC32_H_
