#ifndef TDMATCH_UTIL_RNG_H_
#define TDMATCH_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace tdmatch {
namespace util {

/// \brief Deterministic, fast PRNG (xoshiro256**).
///
/// Every stochastic component in the library draws from an explicitly seeded
/// Rng instance so experiments are reproducible bit-for-bit. Not
/// cryptographically secure.
class Rng {
 public:
  /// Seeds the generator; a SplitMix64 pass expands the seed into state.
  explicit Rng(uint64_t seed = 42);

  /// Next raw 64-bit draw.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal draw (Box–Muller, no caching).
  double Gaussian();

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  /// Fisher–Yates shuffle of a vector.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k clamped to n).
  std::vector<size_t> SampleIndices(size_t n, size_t k);

  /// Picks a uniformly random element; vector must be non-empty.
  template <typename T>
  const T& Choice(const std::vector<T>& v) {
    return v[static_cast<size_t>(UniformInt(v.size()))];
  }

  /// Forks a statistically independent child generator (for per-thread use).
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace util
}  // namespace tdmatch

#endif  // TDMATCH_UTIL_RNG_H_
