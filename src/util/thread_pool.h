#ifndef TDMATCH_UTIL_THREAD_POOL_H_
#define TDMATCH_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace tdmatch {
namespace util {

/// \brief Fixed-size worker pool with a blocking Wait(); used by the
/// Word2Vec trainer (Hogwild) and the random-walk generator.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 → hardware concurrency, min 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have finished.
  void Wait();

  /// Number of worker threads.
  size_t num_threads() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Work is chunked so each thread gets a contiguous range.
  static void ParallelFor(size_t n, size_t num_threads,
                          const std::function<void(size_t begin, size_t end,
                                                   size_t thread_idx)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_cv_;
  std::condition_variable done_cv_;
  size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace util
}  // namespace tdmatch

#endif  // TDMATCH_UTIL_THREAD_POOL_H_
