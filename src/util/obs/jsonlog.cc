#include "util/obs/jsonlog.h"

#include <chrono>
#include <cstdio>
#include <utility>

namespace tdmatch {
namespace util {
namespace obs {

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "info";
}

LogLevel ParseLogLevel(std::string_view name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  return LogLevel::kInfo;
}

JsonLogger& JsonLogger::Global() {
  static JsonLogger* instance = new JsonLogger();
  return *instance;
}

JsonLogger::~JsonLogger() { CloseFile(); }

void JsonLogger::set_sink(Sink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = std::move(sink);
}

util::Status JsonLogger::OpenFile(const std::string& path,
                                  uint64_t max_bytes) {
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    return util::Status::IOError("cannot open log file: " + path);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = f;
  file_path_ = path;
  max_bytes_ = max_bytes;
  const long pos = std::ftell(f);
  file_bytes_ = pos > 0 ? static_cast<uint64_t>(pos) : 0;
  rotations_.store(0, std::memory_order_relaxed);
  return util::Status::OK();
}

void JsonLogger::CloseFile() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  file_path_.clear();
  file_bytes_ = 0;
}

void JsonLogger::RotateLocked() {
  std::fclose(file_);
  file_ = nullptr;
  const std::string rotated = file_path_ + ".1";
  // Keep-one policy: the previous rotation (if any) is replaced.
  std::rename(file_path_.c_str(), rotated.c_str());
  file_ = std::fopen(file_path_.c_str(), "a");
  file_bytes_ = 0;
  rotations_.fetch_add(1, std::memory_order_relaxed);
}

JsonLogger::Event JsonLogger::Log(LogLevel level, std::string_view event) {
  return Event(enabled(level) ? this : nullptr, level, event);
}

JsonLogger::Event::Event(JsonLogger* logger, LogLevel level,
                         std::string_view event)
    : logger_(logger) {
  if (logger_ == nullptr) return;
  w_.Reserve(512);  // typical trace line with spans; avoids regrowth
  const double ts =
      std::chrono::duration<double>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  w_.BeginObject()
      .Key("ts").Value(ts)
      .Key("level").Value(LogLevelName(level))
      .Key("event").Value(event);
}

JsonLogger::Event::Event(Event&& other) noexcept
    : logger_(other.logger_), w_(std::move(other.w_)) {
  other.logger_ = nullptr;
}

JsonLogger::Event::~Event() {
  if (logger_ == nullptr) return;
  w_.EndObject();
  logger_->Emit(w_.str());
}

JsonLogger::Event& JsonLogger::Event::Str(std::string_view key,
                                          std::string_view value) {
  if (logger_ != nullptr) w_.Key(key).Value(value);
  return *this;
}

JsonLogger::Event& JsonLogger::Event::Num(std::string_view key,
                                          double value) {
  if (logger_ != nullptr) w_.Key(key).Value(value);
  return *this;
}

JsonLogger::Event& JsonLogger::Event::Int(std::string_view key,
                                          int64_t value) {
  if (logger_ != nullptr) w_.Key(key).Value(value);
  return *this;
}

JsonLogger::Event& JsonLogger::Event::Uint(std::string_view key,
                                           uint64_t value) {
  if (logger_ != nullptr) w_.Key(key).Value(value);
  return *this;
}

JsonLogger::Event& JsonLogger::Event::Bool(std::string_view key,
                                           bool value) {
  if (logger_ != nullptr) w_.Key(key).Value(value);
  return *this;
}

void JsonLogger::Emit(const std::string& line) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sink_) {
    sink_(line);
    return;
  }
  // One fwrite of the full line + newline: lines from concurrent threads
  // never interleave (the mutex), and stderr is unbuffered by default.
  std::string with_newline = line;
  with_newline.push_back('\n');
  if (file_ != nullptr) {
    if (max_bytes_ > 0 && file_bytes_ + with_newline.size() > max_bytes_) {
      RotateLocked();
    }
    if (file_ != nullptr) {
      std::fwrite(with_newline.data(), 1, with_newline.size(), file_);
      // Flush per line: crash forensics are the whole point of a log
      // file, a buffered tail defeats it.
      std::fflush(file_);
      file_bytes_ += with_newline.size();
      return;
    }
    // Reopen after rotation failed — fall through to stderr.
  }
  std::fwrite(with_newline.data(), 1, with_newline.size(), stderr);
}

}  // namespace obs
}  // namespace util
}  // namespace tdmatch
