#ifndef TDMATCH_UTIL_OBS_PROFILER_H_
#define TDMATCH_UTIL_OBS_PROFILER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace tdmatch {
namespace util {
namespace obs {

/// \brief One aggregated CPU profile: collapsed call stacks with sample
/// counts, plus capture bookkeeping. Produced by CpuProfiler::Stop().
struct CpuProfile {
  /// Sampling frequency the capture ran at (samples per CPU-second).
  int hz = 0;
  /// Wall-clock seconds between Start and Stop.
  double seconds = 0.0;
  /// Samples captured (== sum of all stack counts).
  uint64_t samples = 0;
  /// Samples dropped because the ring filled (still statistically fine —
  /// drops are uniform over time once the ring is full).
  uint64_t dropped = 0;
  /// Collapsed stacks: "outermost;caller;leaf" → count, sorted by count
  /// descending. Symbol names are demangled where `dladdr` resolves them;
  /// unresolvable frames render as the raw "0x..." address.
  std::vector<std::pair<std::string, uint64_t>> stacks;

  /// flamegraph.pl folded-stack text: one "stack count" line per entry.
  std::string FoldedText() const;
  /// JSON view: capture metadata + the top `top_n` functions ranked by
  /// self (leaf) samples, each with self/total counts and fractions.
  std::string ToJson(size_t top_n = 20) const;
};

/// \brief Sampling CPU profiler: ITIMER_PROF fires SIGPROF every
/// 1/hz CPU-seconds; the signal handler walks the interrupted thread's
/// frame-pointer chain (from the ucontext registers — async-signal-safe,
/// no unwinder, no allocation) into a lock-free striped sample ring.
/// Stop() aggregates the raw PCs into collapsed stacks symbolized via
/// `dladdr` (link with -rdynamic so executable-local symbols resolve).
///
/// ITIMER_PROF counts *process CPU time*, so idle threads cost nothing
/// and samples land where cycles burn — the right default for a serving
/// process that is mostly parked in epoll. The timer is process-wide, so
/// only one capture can run at a time; a second Start() returns
/// AlreadyExists (callers map it to HTTP 409).
///
/// Build requirements: frame-pointer walking needs
/// -fno-omit-frame-pointer (set on tdmatch_build_flags); symbolization
/// quality needs -rdynamic on executables. Without them the profile
/// degrades to leaf-only PCs / hex frames rather than breaking.
class CpuProfiler {
 public:
  /// The process-wide profiler (the SIGPROF handler has one global
  /// sample ring; there is no per-instance mode).
  static CpuProfiler& Global();

  /// True on platforms where capture is implemented (Linux
  /// x86-64/aarch64). Elsewhere Start() returns Unimplemented.
  static bool Supported();

  /// Starts sampling at `hz` (clamped to [1, 1000]). Installs the
  /// SIGPROF handler and arms ITIMER_PROF. AlreadyExists if a capture is
  /// already running.
  util::Status Start(int hz = 99);

  /// Disarms the timer, drains the ring, and returns the aggregated
  /// profile. Safe to call only after a successful Start().
  CpuProfile Stop();

  /// Convenience: Start(), busy-wait `seconds` of wall time (sleeping),
  /// Stop(). The calling thread blocks; other threads keep running and
  /// keep getting sampled.
  util::Result<CpuProfile> ProfileFor(double seconds, int hz = 99);

  bool running() const;

  CpuProfiler(const CpuProfiler&) = delete;
  CpuProfiler& operator=(const CpuProfiler&) = delete;

 private:
  CpuProfiler() = default;
};

}  // namespace obs
}  // namespace util
}  // namespace tdmatch

#endif  // TDMATCH_UTIL_OBS_PROFILER_H_
