#ifndef TDMATCH_UTIL_OBS_PHASE_PROFILE_H_
#define TDMATCH_UTIL_OBS_PHASE_PROFILE_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/timer.h"

namespace tdmatch {
namespace util {
namespace obs {

/// \brief Ordered list of named phase timings for a batch pipeline run
/// (corpus load → graph build → walks → per-epoch train → snapshot
/// write). Phases append in execution order and may repeat (one
/// "train_epoch" per epoch); Seconds(name) sums every matching entry.
/// Not thread-safe — a profile belongs to one pipeline invocation.
class PhaseProfile {
 public:
  struct Phase {
    std::string name;
    double seconds;
  };

  void Add(std::string name, double seconds) {
    phases_.push_back(Phase{std::move(name), seconds});
  }
  /// Appends every phase of `other`, prefixing names (e.g. "train.").
  void Merge(const PhaseProfile& other, const std::string& prefix = "") {
    for (const Phase& p : other.phases_) {
      phases_.push_back(Phase{prefix + p.name, p.seconds});
    }
  }

  /// Sum over phases named exactly `name` (0 when absent).
  double Seconds(std::string_view name) const {
    double total = 0.0;
    for (const Phase& p : phases_) {
      if (p.name == name) total += p.seconds;
    }
    return total;
  }
  /// Sum over every recorded phase — the instrumented wall clock of the
  /// whole run.
  double Total() const {
    double total = 0.0;
    for (const Phase& p : phases_) total += p.seconds;
    return total;
  }

  const std::vector<Phase>& phases() const { return phases_; }
  bool empty() const { return phases_.empty(); }
  void clear() { phases_.clear(); }

 private:
  std::vector<Phase> phases_;
};

/// RAII phase timer: appends `name` with the elapsed seconds when
/// destroyed (or at an explicit Stop(), which also returns the reading).
class PhaseTimer {
 public:
  PhaseTimer(PhaseProfile* profile, std::string name)
      : profile_(profile), name_(std::move(name)) {}
  ~PhaseTimer() { Stop(); }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  double Stop() {
    const double s = watch_.ElapsedSeconds();
    if (profile_ != nullptr) {
      profile_->Add(std::move(name_), s);
      profile_ = nullptr;
    }
    return s;
  }

 private:
  PhaseProfile* profile_;
  std::string name_;
  util::StopWatch watch_;
};

}  // namespace obs
}  // namespace util
}  // namespace tdmatch

#endif  // TDMATCH_UTIL_OBS_PHASE_PROFILE_H_
