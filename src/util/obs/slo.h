#ifndef TDMATCH_UTIL_OBS_SLO_H_
#define TDMATCH_UTIL_OBS_SLO_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace tdmatch {
namespace util {
namespace obs {

/// One short/long window pair with a burn-rate threshold — the standard
/// multi-window multi-burn-rate alerting recipe: the long window keeps
/// the signal from flapping, the short window makes it reset quickly
/// once the incident ends. The condition fires only when BOTH windows
/// burn above the threshold.
struct SloWindowPair {
  double short_seconds = 60.0;
  double long_seconds = 600.0;
  /// Burn rate = observed error rate / budgeted error rate (1 - target).
  /// 14.4 on a 99.9% objective means the monthly budget would be gone in
  /// ~2 days — the classic fast-page threshold.
  double threshold = 14.4;
};

struct SloOptions {
  /// Availability objective: fraction of requests that must not be
  /// server errors (5xx).
  double availability_target = 0.999;
  /// Latency objective: fraction of requests that must finish within
  /// the configured budget. <= 0 budget disables the objective (the
  /// tracker then reports availability only).
  double latency_target = 0.999;
  double latency_budget_ms = 0.0;
  /// Fast pair drives the degraded health state; the slow pair is
  /// report-only context on /v1/slo.
  SloWindowPair fast{60.0, 600.0, 14.4};
  SloWindowPair slow{300.0, 3600.0, 6.0};
  /// Event-ring resolution; total retained span is
  /// bucket_seconds * buckets and must cover the longest window.
  double bucket_seconds = 5.0;
  size_t buckets = 720;  // 1 h at 5 s resolution
};

/// \brief Objective-based health: every request outcome lands in a
/// lock-free ring of per-bucket good/bad tallies (one ring per
/// objective), and burn rates over the configured windows are computed
/// on demand. The clock is explicit (timestamps in seconds) so tests
/// drive trajectories with a fake clock.
///
/// Record() is wait-free: a bucket index computation plus two relaxed
/// atomic adds — safe to call from every request thread at full load.
/// A bucket is lazily re-zeroed (via an epoch CAS) the first time a new
/// time quantum touches it, so stale tallies from one ring revolution
/// ago never leak into a fresh window.
class SloTracker {
 public:
  explicit SloTracker(SloOptions options = {});

  /// One finished request at time `now` (seconds): was it good for
  /// availability (not a 5xx) and good for latency (within budget)?
  void Record(double now, bool available, bool within_latency);

  struct WindowBurn {
    double window_seconds = 0.0;
    uint64_t good = 0;
    uint64_t bad = 0;
    double error_rate = 0.0;  // bad / (good + bad), 0 when empty
    double burn_rate = 0.0;   // error_rate / (1 - target)
  };

  struct ObjectiveStatus {
    std::string name;      // "availability" | "latency"
    double target = 0.0;
    WindowBurn fast_short, fast_long, slow_short, slow_long;
    bool fast_burning = false;  // both fast windows above threshold
    bool slow_burning = false;
    /// Fraction of the error budget left over the slow-long window
    /// (1 = untouched, 0 = exhausted, clamped at 0).
    double budget_remaining = 1.0;
  };

  /// Burn-rate evaluation at time `now`. Latency objective present only
  /// when a budget is configured.
  std::vector<ObjectiveStatus> Evaluate(double now) const;

  /// True when any objective's fast pair is burning — the healthz
  /// "degraded" condition.
  bool Degraded(double now) const;

  const SloOptions& options() const { return options_; }

 private:
  struct Bucket {
    std::atomic<int64_t> epoch{-1};
    std::atomic<uint64_t> good{0};
    std::atomic<uint64_t> bad{0};
  };
  struct Ring {
    explicit Ring(size_t n) : buckets(new Bucket[n]) {}
    std::unique_ptr<Bucket[]> buckets;
  };

  void RecordInto(Ring* ring, int64_t epoch, bool good) const;
  WindowBurn Burn(const Ring& ring, double window_seconds, double now,
                  double target) const;

  SloOptions options_;
  Ring availability_;
  Ring latency_;
};

}  // namespace obs
}  // namespace util
}  // namespace tdmatch

#endif  // TDMATCH_UTIL_OBS_SLO_H_
