#include "util/obs/trace.h"

#include <chrono>
#include <cmath>

#include "util/string_util.h"

namespace tdmatch {
namespace util {
namespace obs {

TraceSampler::TraceSampler(double fraction) {
  if (!(fraction > 0.0)) {
    period_ = 0;
  } else if (fraction >= 1.0) {
    period_ = 1;
  } else {
    period_ = static_cast<uint64_t>(std::llround(1.0 / fraction));
    if (period_ == 0) period_ = 1;
  }
}

std::string GenerateTraceId() {
  // Seeded once per process from the wall clock; ids are unique within a
  // process (counter) and unlikely to collide across restarts (seed).
  static const uint64_t seed = static_cast<uint64_t>(
      std::chrono::system_clock::now().time_since_epoch().count());
  static std::atomic<uint64_t> counter{0};
  const uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
  // splitmix64 finalizer over seed+n: well-spread hex without a PRNG dep.
  uint64_t x = seed + 0x9e3779b97f4a7c15ULL * (n + 1);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return util::StrFormat("t-%016llx",
                         static_cast<unsigned long long>(x));
}

}  // namespace obs
}  // namespace util
}  // namespace tdmatch
