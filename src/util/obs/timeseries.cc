#include "util/obs/timeseries.h"

#include <algorithm>
#include <chrono>

namespace tdmatch {
namespace util {
namespace obs {

namespace {

bool HasPrefix(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace

TimeSeriesStore::TimeSeriesStore(Registry* registry,
                                 TimeSeriesOptions options)
    : registry_(registry), options_(std::move(options)) {
  if (options_.capacity == 0) options_.capacity = 1;
  if (options_.interval_seconds <= 0) options_.interval_seconds = 1.0;
}

void TimeSeriesStore::SampleOnce(double now) {
  const std::vector<Registry::Sample> samples = registry_->Collect();
  std::lock_guard<std::mutex> lock(mu_);
  samples_taken_ += 1;
  for (const auto& sample : samples) {
    if (!options_.name_prefix.empty() &&
        !HasPrefix(sample.name, options_.name_prefix)) {
      continue;
    }
    Ring& ring = series_[sample.name + sample.labels];
    if (ring.points.empty()) {
      ring.type = sample.type;
      ring.points.resize(options_.capacity);
    }
    ring.points[ring.head] = Point{now, sample.value};
    ring.head = (ring.head + 1) % options_.capacity;
    ring.size = std::min(ring.size + 1, options_.capacity);
  }
}

std::vector<TimeSeriesStore::SeriesWindow> TimeSeriesStore::Window(
    double window_seconds, double now, const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SeriesWindow> out;
  const double cutoff = now - window_seconds;
  for (const auto& [key, ring] : series_) {
    if (!prefix.empty() && !HasPrefix(key, prefix)) continue;
    SeriesWindow win;
    // Oldest-first walk of the ring; retention also trims anything older
    // than the cutoff.
    const size_t oldest =
        (ring.head + options_.capacity - ring.size) % options_.capacity;
    for (size_t i = 0; i < ring.size; ++i) {
      const Point& p = ring.points[(oldest + i) % options_.capacity];
      if (p.ts <= cutoff || p.ts > now) continue;
      win.points.push_back(p);
    }
    if (win.points.empty()) continue;
    // The key is name + "{...}"; split back apart for the JSON view.
    const size_t brace = key.find('{');
    win.name = brace == std::string::npos ? key : key.substr(0, brace);
    win.labels = brace == std::string::npos ? "" : key.substr(brace);
    win.type = ring.type;
    win.last = win.points.back().value;
    win.delta = win.points.back().value - win.points.front().value;
    if (ring.type == MetricType::kCounter && win.delta < 0) {
      // Counter reset (process restart behind the same store): the
      // decrease is not a negative rate, restart the delta at the last
      // absolute value.
      win.delta = win.points.back().value;
    }
    const double span = win.points.back().ts - win.points.front().ts;
    win.rate_per_sec = span > 0 ? win.delta / span : 0.0;
    out.push_back(std::move(win));
  }
  return out;
}

size_t TimeSeriesStore::MemoryBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t bytes = 0;
  for (const auto& [key, ring] : series_) {
    bytes += key.size() + sizeof(Ring);
    bytes += ring.points.capacity() * sizeof(Point);
  }
  return bytes;
}

size_t TimeSeriesStore::series_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_.size();
}

uint64_t TimeSeriesStore::samples_taken() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_taken_;
}

TimeSeriesSampler::TimeSeriesSampler(TimeSeriesStore* store)
    : store_(store) {}

TimeSeriesSampler::~TimeSeriesSampler() { Stop(); }

void TimeSeriesSampler::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (thread_.joinable()) return;
  stop_requested_ = false;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] {
    const auto interval = std::chrono::duration<double>(
        store_->options().interval_seconds);
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_requested_) {
      lock.unlock();
      store_->SampleOnce(std::chrono::duration<double>(
                             std::chrono::system_clock::now()
                                 .time_since_epoch())
                             .count());
      lock.lock();
      cv_.wait_for(lock, interval, [this] { return stop_requested_; });
    }
  });
}

void TimeSeriesSampler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!thread_.joinable()) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    thread_ = std::thread();
  }
  running_.store(false, std::memory_order_release);
}

}  // namespace obs
}  // namespace util
}  // namespace tdmatch
