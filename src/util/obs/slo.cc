#include "util/obs/slo.h"

#include <algorithm>
#include <cmath>

namespace tdmatch {
namespace util {
namespace obs {

SloTracker::SloTracker(SloOptions options)
    : options_(options),
      availability_(options_.buckets == 0 ? 1 : options_.buckets),
      latency_(options_.buckets == 0 ? 1 : options_.buckets) {
  if (options_.buckets == 0) options_.buckets = 1;
  if (options_.bucket_seconds <= 0) options_.bucket_seconds = 1.0;
  // The rings must span the longest configured window or tallies expire
  // while still inside it.
  const double longest =
      std::max(options_.fast.long_seconds, options_.slow.long_seconds);
  const double span =
      options_.bucket_seconds * static_cast<double>(options_.buckets);
  if (span < longest) {
    options_.buckets =
        static_cast<size_t>(std::ceil(longest / options_.bucket_seconds)) + 1;
    availability_ = Ring(options_.buckets);
    latency_ = Ring(options_.buckets);
  }
}

void SloTracker::RecordInto(Ring* ring, int64_t epoch, bool good) const {
  Bucket& b = ring->buckets[static_cast<size_t>(epoch) % options_.buckets];
  int64_t seen = b.epoch.load(std::memory_order_acquire);
  if (seen != epoch) {
    // First touch of this time quantum: one writer wins the CAS and
    // zeroes the stale tallies; the rest proceed on the fresh bucket.
    // A tally from the losing side of this tiny race lands in either
    // the stale or fresh bucket — at 5 s resolution that bias is
    // far below anything a burn rate can resolve.
    if (b.epoch.compare_exchange_strong(seen, epoch,
                                        std::memory_order_acq_rel)) {
      b.good.store(0, std::memory_order_relaxed);
      b.bad.store(0, std::memory_order_relaxed);
    }
  }
  if (good) {
    b.good.fetch_add(1, std::memory_order_relaxed);
  } else {
    b.bad.fetch_add(1, std::memory_order_relaxed);
  }
}

void SloTracker::Record(double now, bool available, bool within_latency) {
  const int64_t epoch =
      static_cast<int64_t>(std::floor(now / options_.bucket_seconds));
  RecordInto(&availability_, epoch, available);
  if (options_.latency_budget_ms > 0) {
    RecordInto(&latency_, epoch, within_latency);
  }
}

SloTracker::WindowBurn SloTracker::Burn(const Ring& ring,
                                        double window_seconds, double now,
                                        double target) const {
  WindowBurn burn;
  burn.window_seconds = window_seconds;
  const int64_t now_epoch =
      static_cast<int64_t>(std::floor(now / options_.bucket_seconds));
  const int64_t first_epoch = static_cast<int64_t>(
      std::floor((now - window_seconds) / options_.bucket_seconds));
  for (int64_t e = first_epoch; e <= now_epoch; ++e) {
    if (e < 0) continue;
    const Bucket& b = ring.buckets[static_cast<size_t>(e) % options_.buckets];
    if (b.epoch.load(std::memory_order_acquire) != e) continue;
    burn.good += b.good.load(std::memory_order_relaxed);
    burn.bad += b.bad.load(std::memory_order_relaxed);
  }
  const uint64_t total = burn.good + burn.bad;
  burn.error_rate =
      total == 0 ? 0.0
                 : static_cast<double>(burn.bad) / static_cast<double>(total);
  const double budget = 1.0 - target;
  burn.burn_rate = budget > 0 ? burn.error_rate / budget : 0.0;
  return burn;
}

std::vector<SloTracker::ObjectiveStatus> SloTracker::Evaluate(
    double now) const {
  std::vector<ObjectiveStatus> out;
  const auto eval = [&](const std::string& name, const Ring& ring,
                        double target) {
    ObjectiveStatus st;
    st.name = name;
    st.target = target;
    st.fast_short = Burn(ring, options_.fast.short_seconds, now, target);
    st.fast_long = Burn(ring, options_.fast.long_seconds, now, target);
    st.slow_short = Burn(ring, options_.slow.short_seconds, now, target);
    st.slow_long = Burn(ring, options_.slow.long_seconds, now, target);
    st.fast_burning =
        st.fast_short.burn_rate > options_.fast.threshold &&
        st.fast_long.burn_rate > options_.fast.threshold;
    st.slow_burning =
        st.slow_short.burn_rate > options_.slow.threshold &&
        st.slow_long.burn_rate > options_.slow.threshold;
    // Budget spent = burn over the longest report window; a burn rate of
    // exactly 1.0 sustained over that window spends exactly its share.
    st.budget_remaining =
        std::max(0.0, 1.0 - st.slow_long.burn_rate);
    return st;
  };
  out.push_back(eval("availability", availability_,
                     options_.availability_target));
  if (options_.latency_budget_ms > 0) {
    out.push_back(eval("latency", latency_, options_.latency_target));
  }
  return out;
}

bool SloTracker::Degraded(double now) const {
  for (const auto& st : Evaluate(now)) {
    if (st.fast_burning) return true;
  }
  return false;
}

}  // namespace obs
}  // namespace util
}  // namespace tdmatch
