#ifndef TDMATCH_UTIL_OBS_METRICS_H_
#define TDMATCH_UTIL_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tdmatch {
namespace util {
namespace obs {

/// Ordered key→value label pairs identifying one child of a metric
/// family (e.g. {{"stage", "parse"}}). Order is preserved in the
/// exposition output; children are deduplicated by their serialized form.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// \brief Monotonic counter, striped across cachelines so concurrent
/// writers from different threads never contend on one atomic. A bump is
/// exactly one relaxed fetch_add; Value() sums the stripes (so reads are
/// O(stripes) and monotone but not a point-in-time snapshot — fine for
/// exposition).
class Counter {
 public:
  Counter() {
    for (auto& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }
  void Inc(uint64_t n = 1) {
    cells_[StripeIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

  static constexpr size_t kStripes = 16;

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v;
  };
  /// Threads are assigned stripes round-robin on first use; the id is
  /// process-wide so two counters never force the same pair of threads
  /// onto the same cell by construction.
  static size_t StripeIndex();

  Cell cells_[kStripes];
};

/// \brief Last-write-wins double gauge.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double d) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief Fixed-bound histogram with atomic per-bucket counters and an
/// interpolating percentile estimator.
///
/// Buckets are defined by ascending upper bounds; observations beyond the
/// last bound land in an overflow bucket. Percentile(p) finds the bucket
/// holding the p-rank and interpolates linearly inside it (the bucket is
/// assumed uniform), so the estimate always lies within the true
/// quantile's bucket — a strict improvement over the old LatencyHistogram
/// which returned the bucket's upper bound. Overflow-bucket percentiles
/// clamp to the last finite bound.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Interpolated p-quantile estimate (p in [0,1]); 0 when empty.
  double Percentile(double p) const;
  const std::vector<double>& bounds() const { return bounds_; }
  /// Raw (non-cumulative) count of bucket i, i in [0, bounds.size()];
  /// index bounds.size() is the overflow bucket.
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// The serving latency grid: power-of-two microsecond upper bounds
  /// 2^0us .. 2^39us expressed in milliseconds (0.001ms .. ~550s) — the
  /// same grid the PR 5 LatencyHistogram used, now with explicit bounds.
  static std::vector<double> LatencyBoundsMs();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

enum class MetricType { kCounter, kGauge, kHistogram };

/// \brief Named metric families with labeled children, rendered as
/// Prometheus text exposition.
///
/// Two kinds of children coexist: *owned* metrics (Counter/Gauge/
/// Histogram instances the caller bumps directly — pointers are stable
/// for the registry's lifetime, so hot paths resolve once and never take
/// the registry lock again) and *callback* samples (a function evaluated
/// at render time, for components that already keep their own counters —
/// admission, cache, tuner, shards). Exposition output is deterministic:
/// families sorted by name, children by serialized label set.
///
/// Use Registry::Global() for process-wide metrics; tests construct their
/// own instances.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& Global();

  /// Get-or-create. Type/help are fixed by the first caller; a type
  /// mismatch on an existing family returns the existing child anyway
  /// (first registration wins — misuse is a programming error, kept
  /// non-fatal so exposition never crashes a server).
  Counter* GetCounter(const std::string& name, const std::string& help,
                      const LabelSet& labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  const LabelSet& labels = {});
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          std::vector<double> bounds,
                          const LabelSet& labels = {});

  /// Callback-valued sample (rendered as `type`, value pulled at scrape
  /// time). Re-registering the same (name, labels) replaces the callback
  /// — reload paths use that to refresh identity labels.
  void RegisterCallback(MetricType type, const std::string& name,
                        const std::string& help, const LabelSet& labels,
                        std::function<double()> fn);
  /// Drops every callback child of `name` (e.g. before re-registering
  /// build_info with new labels after a reload).
  void ClearCallbacks(const std::string& name);

  /// Prometheus text exposition (text/plain; version=0.0.4): `# HELP` /
  /// `# TYPE` per family, counters as integers, gauges/callbacks as
  /// %.17g, histograms as cumulative `_bucket{le=...}` + `_sum` +
  /// `_count`. Deterministic ordering, label values escaped.
  std::string RenderPrometheus() const;

  /// One scalar child value at collection time. Histogram children
  /// flatten to two samples: `<name>_count` (counter semantics) and
  /// `<name>_sum` (gauge semantics) — enough to derive rates without
  /// retaining full bucket vectors.
  struct Sample {
    std::string name;
    std::string labels;  // serialized FormatLabels form, "" for none
    MetricType type = MetricType::kCounter;
    double value = 0.0;
  };

  /// Point-in-time scalar snapshot of every child, in the same
  /// deterministic family/label order as the exposition. Callback
  /// samples are evaluated here, exactly as a scrape would. This is the
  /// time-series sampler's input.
  std::vector<Sample> Collect() const;

 private:
  struct Family {
    MetricType type = MetricType::kCounter;
    std::string help;
    std::vector<double> bounds;  // histograms only
    // Keyed by serialized label set (stable render order for free).
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
    std::map<std::string, std::function<double()>> callbacks;
  };

  Family* GetFamily(const std::string& name, MetricType type,
                    const std::string& help);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

/// Serializes a label set as `{k1="v1",k2="v2"}` with Prometheus escaping
/// (backslash, double-quote, newline); empty set → empty string.
std::string FormatLabels(const LabelSet& labels);

}  // namespace obs
}  // namespace util
}  // namespace tdmatch

#endif  // TDMATCH_UTIL_OBS_METRICS_H_
