#ifndef TDMATCH_UTIL_OBS_TRACE_H_
#define TDMATCH_UTIL_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/timer.h"

namespace tdmatch {
namespace util {
namespace obs {

/// \brief One request's trace: an id plus a flat list of closed spans,
/// each stamped with its start offset, duration, and nesting depth.
///
/// A Trace is single-threaded by design (it belongs to one request on one
/// handler thread); it allocates one small vector and reads the steady
/// clock twice per span. Every entry point takes `Trace*` and tolerates
/// nullptr — an untraced request passes nullptr and pays exactly one
/// branch per would-be span.
class Trace {
 public:
  struct SpanRecord {
    const char* name;  // static-duration string literals only
    double start_ms;   // offset from trace start
    double ms;         // duration (0 until the span closes)
    int depth;         // 0 = top level
  };

  explicit Trace(std::string id) : id_(std::move(id)) {
    // A traced /v1/query records 6-8 spans; one upfront reservation keeps
    // the hot path free of vector regrowth.
    spans_.reserve(8);
  }

  /// RAII span: opens on construction, closes (records duration) on
  /// destruction or an explicit Close() — early returns are covered by
  /// the destructor. No-op when `trace` is null.
  class Span {
   public:
    Span(Trace* trace, const char* name)
        : trace_(trace),
          index_(trace != nullptr ? trace->OpenSpan(name) : 0) {}
    ~Span() { Close(); }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    void Close() {
      if (trace_ != nullptr) {
        trace_->CloseSpan(index_);
        trace_ = nullptr;
      }
    }

   private:
    Trace* trace_;
    size_t index_;
  };

  /// Records an externally measured span (e.g. scatter/merge timings
  /// handed out by the sharded engine) at the current depth.
  void AddSpan(const char* name, double ms) {
    spans_.push_back(SpanRecord{name, watch_.ElapsedMillis() - ms, ms,
                                depth_});
  }

  /// Stops the trace clock; returns total ms (idempotent).
  double Finish() {
    if (!finished_) {
      total_ms_ = watch_.ElapsedMillis();
      finished_ = true;
    }
    return total_ms_;
  }

  const std::string& id() const { return id_; }
  const std::vector<SpanRecord>& spans() const { return spans_; }
  double total_ms() const { return total_ms_; }

 private:
  friend class Span;
  size_t OpenSpan(const char* name) {
    spans_.push_back(SpanRecord{name, watch_.ElapsedMillis(), 0.0, depth_});
    ++depth_;
    return spans_.size() - 1;
  }
  void CloseSpan(size_t index) {
    spans_[index].ms = watch_.ElapsedMillis() - spans_[index].start_ms;
    --depth_;
  }

  std::string id_;
  util::StopWatch watch_;
  std::vector<SpanRecord> spans_;
  int depth_ = 0;
  double total_ms_ = 0.0;
  bool finished_ = false;
};

/// \brief Deterministic every-Nth sampler: fraction 0 never samples,
/// >= 1 always, otherwise every round(1/fraction)-th call returns true.
/// One relaxed fetch_add per decision; safe from any thread.
class TraceSampler {
 public:
  explicit TraceSampler(double fraction);
  bool ShouldSample() {
    if (period_ == 0) return false;
    if (period_ == 1) return true;
    return n_.fetch_add(1, std::memory_order_relaxed) % period_ == 0;
  }
  bool always() const { return period_ == 1; }
  bool never() const { return period_ == 0; }

 private:
  uint64_t period_;
  std::atomic<uint64_t> n_{0};
};

/// Process-unique trace id: "t-" + 16 hex digits mixing a per-boot seed
/// with a monotone counter. Used when the client sent no X-Request-Id.
std::string GenerateTraceId();

}  // namespace obs
}  // namespace util
}  // namespace tdmatch

#endif  // TDMATCH_UTIL_OBS_TRACE_H_
