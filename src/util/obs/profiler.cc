#include "util/obs/profiler.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <thread>

#include "util/json.h"
#include "util/string_util.h"

#if defined(__linux__) && (defined(__x86_64__) || defined(__aarch64__))
#define TDMATCH_PROFILER_SUPPORTED 1
#include <cxxabi.h>
#include <dlfcn.h>
#include <signal.h>
#include <sys/time.h>
#include <ucontext.h>
#else
#define TDMATCH_PROFILER_SUPPORTED 0
#endif

namespace tdmatch {
namespace util {
namespace obs {

namespace {

#if TDMATCH_PROFILER_SUPPORTED

/// Capture geometry. 16 rings x 1024 slots holds ~165 s of samples at
/// 99 Hz on one busy core before drops start; drops are counted, not
/// silent. ~6.5 MB, allocated on first Start() and kept for the process
/// lifetime (the SIGPROF handler must never race an allocator).
constexpr size_t kNumRings = 16;
constexpr uint32_t kSlotsPerRing = 1024;
constexpr int kMaxFrames = 48;
/// Frame-pointer walk sanity bounds: the first frame pointer must sit
/// within this many bytes above the stack pointer, and each frame must
/// advance by no more than kMaxFrameBytes — garbage chains terminate
/// instead of walking off the stack.
constexpr uintptr_t kMaxStackSpanBytes = 8u << 20;
constexpr uintptr_t kMaxFrameBytes = 64u << 10;

struct Slot {
  std::atomic<uint32_t> ready;
  uint32_t depth;
  uintptr_t pcs[kMaxFrames];
};

struct alignas(64) Ring {
  std::atomic<uint32_t> next;
  Slot* slots;  // kSlotsPerRing entries
};

/// All state the signal handler touches. Allocated once, never freed:
/// a handler caught mid-run during Stop() must still find it valid.
struct ProfilerState {
  std::atomic<bool> busy{false};    // a capture session owns the rings
  std::atomic<bool> active{false};  // handler gate (cleared first on Stop)
  std::atomic<uint64_t> dropped{0};
  Ring rings[kNumRings];
  int hz = 0;
  std::chrono::steady_clock::time_point started;
  struct sigaction old_action;
};

std::atomic<ProfilerState*> g_state{nullptr};

ProfilerState* GetOrCreateState() {
  ProfilerState* st = g_state.load(std::memory_order_acquire);
  if (st != nullptr) return st;
  auto* fresh = new ProfilerState();
  Slot* slots = new Slot[kNumRings * kSlotsPerRing]();
  for (size_t r = 0; r < kNumRings; ++r) {
    fresh->rings[r].next.store(0, std::memory_order_relaxed);
    fresh->rings[r].slots = slots + r * kSlotsPerRing;
  }
  ProfilerState* expected = nullptr;
  if (g_state.compare_exchange_strong(expected, fresh,
                                      std::memory_order_acq_rel)) {
    return fresh;
  }
  delete[] slots;
  delete fresh;
  return expected;
}

/// SIGPROF handler: read the interrupted thread's pc/fp/sp from the
/// ucontext and walk the frame-pointer chain. Everything here is
/// async-signal-safe by construction — raw loads, relaxed atomics, no
/// calls (memcpy is avoided: sanitizer interceptors make it unsafe in a
/// handler).
void SampleHandler(int /*signo*/, siginfo_t* /*info*/, void* ucv) {
  ProfilerState* st = g_state.load(std::memory_order_acquire);
  if (st == nullptr || !st->active.load(std::memory_order_relaxed)) return;
  auto* uc = static_cast<ucontext_t*>(ucv);
#if defined(__x86_64__)
  const uintptr_t pc =
      static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
  uintptr_t fp = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
  const uintptr_t sp =
      static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RSP]);
#else  // __aarch64__
  const uintptr_t pc = static_cast<uintptr_t>(uc->uc_mcontext.pc);
  uintptr_t fp = static_cast<uintptr_t>(uc->uc_mcontext.regs[29]);
  const uintptr_t sp = static_cast<uintptr_t>(uc->uc_mcontext.sp);
#endif

  uintptr_t pcs[kMaxFrames];
  uint32_t depth = 0;
  pcs[depth++] = pc;
  // Trust the initial fp only if it plausibly points into this thread's
  // stack (leaf functions may use the frame register as scratch).
  if (fp >= sp && fp - sp <= kMaxStackSpanBytes &&
      (fp & (sizeof(uintptr_t) - 1)) == 0) {
    while (depth < kMaxFrames) {
      const uintptr_t next = reinterpret_cast<const uintptr_t*>(fp)[0];
      const uintptr_t ret = reinterpret_cast<const uintptr_t*>(fp)[1];
      if (ret < 4096) break;
      pcs[depth++] = ret;
      if (next <= fp || next - fp > kMaxFrameBytes ||
          (next & (sizeof(uintptr_t) - 1)) != 0) {
        break;
      }
      fp = next;
    }
  }

  // Stripe by stack page so concurrent threads land on different rings.
  Ring& ring = st->rings[(sp >> 12) % kNumRings];
  const uint32_t idx = ring.next.fetch_add(1, std::memory_order_relaxed);
  if (idx >= kSlotsPerRing) {
    st->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Slot& slot = ring.slots[idx];
  slot.depth = depth;
  for (uint32_t i = 0; i < depth; ++i) slot.pcs[i] = pcs[i];
  slot.ready.store(1, std::memory_order_release);
}

/// Best-effort symbol name for a pc: demangled dynamic symbol when
/// dladdr resolves one (executables must link -rdynamic for their own
/// symbols to appear), else the raw address.
std::string Symbolize(uintptr_t pc) {
  Dl_info info;
  std::memset(&info, 0, sizeof(info));
  if (dladdr(reinterpret_cast<void*>(pc), &info) != 0 &&
      info.dli_sname != nullptr) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    std::string name =
        (status == 0 && demangled != nullptr) ? demangled : info.dli_sname;
    std::free(demangled);
    // ';' separates frames in folded output; never let a symbol smuggle
    // one in.
    for (char& c : name) {
      if (c == ';' || c == '\n') c = ':';
    }
    return name;
  }
  return util::StrFormat("0x%zx", static_cast<size_t>(pc));
}

#endif  // TDMATCH_PROFILER_SUPPORTED

}  // namespace

std::string CpuProfile::FoldedText() const {
  std::string out;
  for (const auto& [stack, count] : stacks) {
    out += stack;
    out += " ";
    out += std::to_string(count);
    out += "\n";
  }
  return out;
}

std::string CpuProfile::ToJson(size_t top_n) const {
  // Per-function self (leaf) and total (anywhere on stack, counted once
  // per stack so recursion does not inflate it).
  std::map<std::string, std::pair<uint64_t, uint64_t>> funcs;  // self,total
  for (const auto& [stack, count] : stacks) {
    std::set<std::string> seen;
    size_t start = 0;
    std::string last;
    while (start <= stack.size()) {
      const size_t sep = stack.find(';', start);
      const size_t end = sep == std::string::npos ? stack.size() : sep;
      std::string frame = stack.substr(start, end - start);
      if (!frame.empty()) {
        if (seen.insert(frame).second) funcs[frame].second += count;
        last = std::move(frame);
      }
      if (sep == std::string::npos) break;
      start = sep + 1;
    }
    if (!last.empty()) funcs[last].first += count;
  }
  std::vector<std::pair<std::string, std::pair<uint64_t, uint64_t>>> ranked(
      funcs.begin(), funcs.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second.first != b.second.first)
      return a.second.first > b.second.first;
    if (a.second.second != b.second.second)
      return a.second.second > b.second.second;
    return a.first < b.first;
  });
  if (ranked.size() > top_n) ranked.resize(top_n);

  util::JsonWriter w;
  w.BeginObject()
      .Key("hz").Value(static_cast<int64_t>(hz))
      .Key("seconds").Value(seconds)
      .Key("samples").Value(samples)
      .Key("dropped").Value(dropped)
      .Key("distinct_stacks").Value(static_cast<uint64_t>(stacks.size()));
  w.Key("top").BeginArray();
  const double denom = samples > 0 ? static_cast<double>(samples) : 1.0;
  for (const auto& [name, counts] : ranked) {
    w.BeginObject()
        .Key("function").Value(name)
        .Key("self").Value(counts.first)
        .Key("total").Value(counts.second)
        .Key("self_fraction")
        .Value(static_cast<double>(counts.first) / denom)
        .EndObject();
  }
  w.EndArray().EndObject();
  return w.str();
}

CpuProfiler& CpuProfiler::Global() {
  static CpuProfiler* instance = new CpuProfiler();
  return *instance;
}

bool CpuProfiler::Supported() { return TDMATCH_PROFILER_SUPPORTED != 0; }

#if TDMATCH_PROFILER_SUPPORTED

util::Status CpuProfiler::Start(int hz) {
  hz = std::max(1, std::min(1000, hz));
  ProfilerState* st = GetOrCreateState();
  bool expected = false;
  if (!st->busy.compare_exchange_strong(expected, true,
                                        std::memory_order_acq_rel)) {
    return util::Status::AlreadyExists("a profile capture is already running");
  }
  for (size_t r = 0; r < kNumRings; ++r) {
    Ring& ring = st->rings[r];
    const uint32_t used =
        std::min(ring.next.load(std::memory_order_relaxed), kSlotsPerRing);
    for (uint32_t i = 0; i < used; ++i) {
      ring.slots[i].ready.store(0, std::memory_order_relaxed);
    }
    ring.next.store(0, std::memory_order_relaxed);
  }
  st->dropped.store(0, std::memory_order_relaxed);
  st->hz = hz;
  st->started = std::chrono::steady_clock::now();

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_sigaction = SampleHandler;
  action.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&action.sa_mask);
  if (sigaction(SIGPROF, &action, &st->old_action) != 0) {
    st->busy.store(false, std::memory_order_release);
    return util::Status::Internal("sigaction(SIGPROF) failed");
  }
  st->active.store(true, std::memory_order_release);

  struct itimerval timer;
  timer.it_interval.tv_sec = 0;
  timer.it_interval.tv_usec = static_cast<suseconds_t>(1000000 / hz);
  if (timer.it_interval.tv_usec == 0) timer.it_interval.tv_usec = 1000;
  timer.it_value = timer.it_interval;
  if (setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    st->active.store(false, std::memory_order_release);
    sigaction(SIGPROF, &st->old_action, nullptr);
    st->busy.store(false, std::memory_order_release);
    return util::Status::Internal("setitimer(ITIMER_PROF) failed");
  }
  return util::Status::OK();
}

CpuProfile CpuProfiler::Stop() {
  CpuProfile profile;
  ProfilerState* st = g_state.load(std::memory_order_acquire);
  if (st == nullptr || !st->busy.load(std::memory_order_acquire)) {
    return profile;
  }
  struct itimerval off;
  std::memset(&off, 0, sizeof(off));
  setitimer(ITIMER_PROF, &off, nullptr);
  st->active.store(false, std::memory_order_release);
  // A handler may be mid-flight on another thread; give it two sampling
  // periods to publish or bail before the rings are read.
  std::this_thread::sleep_for(std::chrono::milliseconds(
      std::max(2, 2000 / std::max(1, st->hz))));
  sigaction(SIGPROF, &st->old_action, nullptr);

  profile.hz = st->hz;
  profile.seconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - st->started)
                        .count();
  profile.dropped = st->dropped.load(std::memory_order_relaxed);

  // Aggregate raw pc stacks first (cheap compares), symbolize each
  // distinct pc once after.
  std::map<std::vector<uintptr_t>, uint64_t> raw;
  for (size_t r = 0; r < kNumRings; ++r) {
    Ring& ring = st->rings[r];
    const uint32_t used =
        std::min(ring.next.load(std::memory_order_relaxed), kSlotsPerRing);
    for (uint32_t i = 0; i < used; ++i) {
      Slot& slot = ring.slots[i];
      if (slot.ready.load(std::memory_order_acquire) == 0) continue;
      const uint32_t depth =
          std::min(slot.depth, static_cast<uint32_t>(kMaxFrames));
      std::vector<uintptr_t> stack(slot.pcs, slot.pcs + depth);
      raw[std::move(stack)] += 1;
      profile.samples += 1;
    }
  }

  std::map<uintptr_t, std::string> symbols;
  auto symbol_for = [&symbols](uintptr_t pc) -> const std::string& {
    auto it = symbols.find(pc);
    if (it == symbols.end()) {
      it = symbols.emplace(pc, Symbolize(pc)).first;
    }
    return it->second;
  };

  std::map<std::string, uint64_t> folded;
  for (const auto& [stack, count] : raw) {
    // Captured leaf-first; folded format wants outermost-first. Frames
    // past the leaf are return addresses — symbolize the call site
    // (pc - 1), not the instruction after it.
    std::string line;
    for (size_t i = stack.size(); i-- > 0;) {
      const uintptr_t pc = i == 0 ? stack[i] : stack[i] - 1;
      if (!line.empty()) line += ";";
      line += symbol_for(pc);
    }
    folded[line] += count;
  }
  profile.stacks.assign(folded.begin(), folded.end());
  std::sort(profile.stacks.begin(), profile.stacks.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });

  st->busy.store(false, std::memory_order_release);
  return profile;
}

bool CpuProfiler::running() const {
  ProfilerState* st = g_state.load(std::memory_order_acquire);
  return st != nullptr && st->busy.load(std::memory_order_acquire);
}

#else  // !TDMATCH_PROFILER_SUPPORTED

util::Status CpuProfiler::Start(int /*hz*/) {
  return util::Status::Unimplemented(
      "CPU profiling requires Linux x86-64 or aarch64");
}

CpuProfile CpuProfiler::Stop() { return CpuProfile(); }

bool CpuProfiler::running() const { return false; }

#endif  // TDMATCH_PROFILER_SUPPORTED

util::Result<CpuProfile> CpuProfiler::ProfileFor(double seconds, int hz) {
  TDM_RETURN_NOT_OK(Start(hz));
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  return Stop();
}

}  // namespace obs
}  // namespace util
}  // namespace tdmatch
