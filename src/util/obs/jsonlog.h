#ifndef TDMATCH_UTIL_OBS_JSONLOG_H_
#define TDMATCH_UTIL_OBS_JSONLOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>

#include "util/json.h"
#include "util/status.h"

namespace tdmatch {
namespace util {
namespace obs {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

const char* LogLevelName(LogLevel level);
/// Parses "debug"/"info"/"warn"/"error" (case-sensitive); defaults to
/// kInfo on anything else.
LogLevel ParseLogLevel(std::string_view name);

/// \brief Leveled structured logger: every event is one JSONL line
/// (`{"ts":...,"level":"info","event":"...",...}`) written atomically to
/// the sink (stderr by default; tests install a capture callback). This
/// replaces the ad-hoc fprintf(stderr, ...) prints in the serving tools —
/// machine-parseable, greppable by event name, and safe from interleaving
/// under concurrent writers.
///
/// Usage:
///   auto ev = JsonLogger::Global().Log(LogLevel::kInfo, "serve_start");
///   if (ev.active()) ev.Str("snapshot", path).Int("port", port);
///   // line is emitted when `ev` goes out of scope
class JsonLogger {
 public:
  using Sink = std::function<void(const std::string& line)>;

  JsonLogger() = default;
  static JsonLogger& Global();

  void set_min_level(LogLevel level) {
    min_level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  LogLevel min_level() const {
    return static_cast<LogLevel>(
        min_level_.load(std::memory_order_relaxed));
  }
  bool enabled(LogLevel level) const {
    return static_cast<int>(level) >=
           min_level_.load(std::memory_order_relaxed);
  }
  /// Redirects emission (tests). Null restores the stderr default.
  void set_sink(Sink sink);

  /// Routes emission to `path` (append mode) with size-based rotation:
  /// when the file would exceed `max_bytes`, it is renamed to
  /// `path + ".1"` (replacing any previous rotation — keep-one policy)
  /// and a fresh file is opened. `max_bytes` 0 disables rotation. An
  /// explicit sink set via set_sink still wins over the file.
  util::Status OpenFile(const std::string& path, uint64_t max_bytes = 0);
  /// Closes the log file (back to stderr). No-op when none is open.
  void CloseFile();
  /// Rotations performed since OpenFile.
  uint64_t rotations() const {
    return rotations_.load(std::memory_order_relaxed);
  }

  /// One pending event. Below-threshold events are inert: field setters
  /// are no-ops and nothing is emitted.
  class Event {
   public:
    Event(JsonLogger* logger, LogLevel level, std::string_view event);
    ~Event();
    Event(Event&& other) noexcept;
    Event(const Event&) = delete;
    Event& operator=(const Event&) = delete;
    Event& operator=(Event&&) = delete;

    bool active() const { return logger_ != nullptr; }
    Event& Str(std::string_view key, std::string_view value);
    Event& Num(std::string_view key, double value);
    Event& Int(std::string_view key, int64_t value);
    Event& Uint(std::string_view key, uint64_t value);
    Event& Bool(std::string_view key, bool value);
    /// Direct writer access for nested structure (arrays of spans). Only
    /// meaningful when active(); callers must balance Begin/End.
    util::JsonWriter& writer() { return w_; }

   private:
    JsonLogger* logger_;
    util::JsonWriter w_;
  };

  Event Log(LogLevel level, std::string_view event);

  ~JsonLogger();

 private:
  friend class Event;
  void Emit(const std::string& line);
  /// Rotate + reopen; called with mu_ held.
  void RotateLocked();

  std::atomic<int> min_level_{static_cast<int>(LogLevel::kInfo)};
  std::atomic<uint64_t> rotations_{0};
  std::mutex mu_;
  Sink sink_;
  std::FILE* file_ = nullptr;
  std::string file_path_;
  uint64_t file_bytes_ = 0;
  uint64_t max_bytes_ = 0;
};

}  // namespace obs
}  // namespace util
}  // namespace tdmatch

#endif  // TDMATCH_UTIL_OBS_JSONLOG_H_
