#ifndef TDMATCH_UTIL_OBS_TIMESERIES_H_
#define TDMATCH_UTIL_OBS_TIMESERIES_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/obs/metrics.h"

namespace tdmatch {
namespace util {
namespace obs {

struct TimeSeriesOptions {
  /// Seconds between samples (the background sampler's cadence; manual
  /// SampleOnce callers may use any spacing).
  double interval_seconds = 1.0;
  /// Ring capacity per series — retention is capacity * interval (the
  /// defaults keep 10 minutes at 1 s resolution).
  size_t capacity = 600;
  /// Only families whose name starts with this prefix are retained
  /// (empty = everything). Keeps the rings to the tdmatch_* families
  /// instead of every scratch metric a test registers.
  std::string name_prefix = "";
};

/// \brief Fixed-memory metric history: each Registry::Collect() sample
/// appends one point per scalar series into a per-series ring buffer.
/// Rates and deltas over a trailing window are computed on demand —
/// PR 9's cumulative counters become queryable qps/shed-rate curves with
/// zero external TSDB.
///
/// The clock is explicit: SampleOnce(now) takes the timestamp, so tests
/// drive a fake clock and the background TimeSeriesSampler drives the
/// real one. Thread-safe; sampling and window queries serialize on one
/// mutex (both are O(series) and run at human frequencies).
class TimeSeriesStore {
 public:
  TimeSeriesStore(Registry* registry, TimeSeriesOptions options = {});

  struct Point {
    double ts = 0.0;  // unix seconds (or any monotone fake-clock base)
    double value = 0.0;
  };

  /// One series' trailing-window view. `delta`/`rate_per_sec` are
  /// first-to-last over the returned points: for counters that is the
  /// increase (clamped at 0 across process restarts), for gauges it is
  /// simply last - first.
  struct SeriesWindow {
    std::string name;
    std::string labels;
    MetricType type = MetricType::kCounter;
    std::vector<Point> points;
    double last = 0.0;
    double delta = 0.0;
    double rate_per_sec = 0.0;
  };

  /// Snapshots the registry at time `now` (seconds) into the rings.
  void SampleOnce(double now);

  /// All series with at least one point in (now - window_seconds, now],
  /// oldest point first. `prefix` further filters by series name (on top
  /// of the construction-time prefix); empty keeps everything.
  std::vector<SeriesWindow> Window(double window_seconds, double now,
                                   const std::string& prefix = "") const;

  /// Resident bytes of the ring storage (rings are reserved at full
  /// capacity on series creation, so this is deterministic for a given
  /// registry shape).
  size_t MemoryBytes() const;

  size_t series_count() const;
  uint64_t samples_taken() const;
  const TimeSeriesOptions& options() const { return options_; }

 private:
  struct Ring {
    MetricType type = MetricType::kCounter;
    std::vector<Point> points;  // reserved to capacity once
    size_t head = 0;            // next write slot
    size_t size = 0;
  };

  Registry* registry_;
  TimeSeriesOptions options_;
  mutable std::mutex mu_;
  /// Keyed by name + serialized labels (unique per child).
  std::map<std::string, Ring> series_;
  uint64_t samples_taken_ = 0;
};

/// \brief Background thread that calls store->SampleOnce(unix-now) every
/// interval. Start/Stop are idempotent; Stop joins promptly via a
/// condition variable rather than sleeping out the interval.
class TimeSeriesSampler {
 public:
  explicit TimeSeriesSampler(TimeSeriesStore* store);
  ~TimeSeriesSampler();

  void Start();
  void Stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  TimeSeriesStore* store_;
  std::atomic<bool> running_{false};
  bool stop_requested_ = false;
  std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
};

}  // namespace obs
}  // namespace util
}  // namespace tdmatch

#endif  // TDMATCH_UTIL_OBS_TIMESERIES_H_
