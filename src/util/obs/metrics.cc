#include "util/obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace tdmatch {
namespace util {
namespace obs {

namespace {

void AppendEscaped(std::string_view s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '\\': out->append("\\\\"); break;
      case '"': out->append("\\\""); break;
      case '\n': out->append("\\n"); break;
      default: out->push_back(c);
    }
  }
}

void AppendHelpEscaped(std::string_view s, std::string* out) {
  // HELP text escapes only backslash and newline (quotes are legal).
  for (char c : s) {
    switch (c) {
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      default: out->push_back(c);
    }
  }
}

/// %.17g — the same round-trippable spelling JsonWriter uses, so a value
/// scraped from /v1/metrics parses back bit-exact.
std::string FormatValue(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  return util::StrFormat("%.17g", v);
}

const char* TypeName(MetricType t) {
  switch (t) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "untyped";
}

/// Splices `extra` (e.g. le="...") into a serialized label block.
std::string WithExtraLabel(const std::string& serialized,
                           const std::string& extra) {
  if (serialized.empty()) return "{" + extra + "}";
  std::string out = serialized.substr(0, serialized.size() - 1);
  out += ",";
  out += extra;
  out += "}";
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

size_t Counter::StripeIndex() {
  static std::atomic<size_t> next{0};
  thread_local const size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return stripe;
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double v) {
  const size_t idx = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::Percentile(double p) const {
  const uint64_t total = count_.load(std::memory_order_relaxed);
  if (total == 0 || bounds_.empty()) return 0.0;
  p = std::min(1.0, std::max(0.0, p));
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(p * static_cast<double>(total))));
  uint64_t cum = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    const uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (cum + in_bucket < rank) {
      cum += in_bucket;
      continue;
    }
    if (i == bounds_.size()) {
      // Overflow bucket: no finite upper bound to interpolate toward;
      // clamp to the last finite boundary (documented underestimate).
      return bounds_.back();
    }
    const double lo = i == 0 ? 0.0 : bounds_[i - 1];
    const double hi = bounds_[i];
    const double frac = static_cast<double>(rank - cum) /
                        static_cast<double>(in_bucket);
    return lo + frac * (hi - lo);
  }
  return bounds_.back();
}

std::vector<double> Histogram::LatencyBoundsMs() {
  std::vector<double> bounds;
  bounds.reserve(40);
  for (int i = 0; i < 40; ++i) {
    bounds.push_back(static_cast<double>(uint64_t{1} << i) / 1000.0);
  }
  return bounds;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Registry& Registry::Global() {
  static Registry* instance = new Registry();
  return *instance;
}

std::string FormatLabels(const LabelSet& labels) {
  if (labels.empty()) return std::string();
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k;
    out += "=\"";
    AppendEscaped(v, &out);
    out += "\"";
  }
  out += "}";
  return out;
}

Registry::Family* Registry::GetFamily(const std::string& name,
                                      MetricType type,
                                      const std::string& help) {
  Family& fam = families_[name];
  if (fam.help.empty()) {
    fam.type = type;
    fam.help = help;
  }
  return &fam;
}

Counter* Registry::GetCounter(const std::string& name,
                              const std::string& help,
                              const LabelSet& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* fam = GetFamily(name, MetricType::kCounter, help);
  auto& slot = fam->counters[FormatLabels(labels)];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name, const std::string& help,
                          const LabelSet& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* fam = GetFamily(name, MetricType::kGauge, help);
  auto& slot = fam->gauges[FormatLabels(labels)];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const std::string& help,
                                  std::vector<double> bounds,
                                  const LabelSet& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* fam = GetFamily(name, MetricType::kHistogram, help);
  if (fam->bounds.empty()) fam->bounds = bounds;
  auto& slot = fam->histograms[FormatLabels(labels)];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

void Registry::RegisterCallback(MetricType type, const std::string& name,
                                const std::string& help,
                                const LabelSet& labels,
                                std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* fam = GetFamily(name, type, help);
  fam->callbacks[FormatLabels(labels)] = std::move(fn);
}

void Registry::ClearCallbacks(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = families_.find(name);
  if (it != families_.end()) it->second.callbacks.clear();
}

std::vector<Registry::Sample> Registry::Collect() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Sample> out;
  for (const auto& [name, fam] : families_) {
    for (const auto& [labels, counter] : fam.counters) {
      out.push_back({name, labels, MetricType::kCounter,
                     static_cast<double>(counter->Value())});
    }
    for (const auto& [labels, gauge] : fam.gauges) {
      out.push_back({name, labels, MetricType::kGauge, gauge->Value()});
    }
    for (const auto& [labels, fn] : fam.callbacks) {
      out.push_back({name, labels, fam.type, fn()});
    }
    for (const auto& [labels, hist] : fam.histograms) {
      out.push_back({name + "_count", labels, MetricType::kCounter,
                     static_cast<double>(hist->count())});
      out.push_back({name + "_sum", labels, MetricType::kGauge,
                     hist->sum()});
    }
  }
  return out;
}

std::string Registry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, fam] : families_) {
    out += "# HELP ";
    out += name;
    out += " ";
    AppendHelpEscaped(fam.help, &out);
    out += "\n# TYPE ";
    out += name;
    out += " ";
    out += TypeName(fam.type);
    out += "\n";
    for (const auto& [labels, counter] : fam.counters) {
      out += name;
      out += labels;
      out += " ";
      out += std::to_string(counter->Value());
      out += "\n";
    }
    for (const auto& [labels, gauge] : fam.gauges) {
      out += name;
      out += labels;
      out += " ";
      out += FormatValue(gauge->Value());
      out += "\n";
    }
    for (const auto& [labels, fn] : fam.callbacks) {
      out += name;
      out += labels;
      out += " ";
      out += FormatValue(fn());
      out += "\n";
    }
    for (const auto& [labels, hist] : fam.histograms) {
      uint64_t cum = 0;
      const auto& bounds = hist->bounds();
      for (size_t i = 0; i < bounds.size(); ++i) {
        cum += hist->BucketCount(i);
        out += name;
        out += "_bucket";
        out += WithExtraLabel(labels, "le=\"" + FormatValue(bounds[i]) +
                                          "\"");
        out += " ";
        out += std::to_string(cum);
        out += "\n";
      }
      cum += hist->BucketCount(bounds.size());
      out += name;
      out += "_bucket";
      out += WithExtraLabel(labels, "le=\"+Inf\"");
      out += " ";
      out += std::to_string(cum);
      out += "\n";
      out += name;
      out += "_sum";
      out += labels;
      out += " ";
      out += FormatValue(hist->sum());
      out += "\n";
      out += name;
      out += "_count";
      out += labels;
      out += " ";
      out += std::to_string(hist->count());
      out += "\n";
    }
  }
  return out;
}

}  // namespace obs
}  // namespace util
}  // namespace tdmatch
