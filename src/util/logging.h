#ifndef TDMATCH_UTIL_LOGGING_H_
#define TDMATCH_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace tdmatch {
namespace util {

/// Log severity levels, in increasing order of importance.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// \brief Minimal leveled logger used throughout the library.
///
/// Messages below the global threshold (default kWarning, so library code is
/// silent in normal operation) are discarded. kFatal aborts the process after
/// flushing.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

  /// Sets the global minimum level that is actually emitted.
  static void SetThreshold(LogLevel level);
  static LogLevel Threshold();

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace util
}  // namespace tdmatch

#define TDM_LOG(level)                                                   \
  ::tdmatch::util::LogMessage(::tdmatch::util::LogLevel::k##level, __FILE__, \
                              __LINE__)

/// CHECK-style invariant assertion: always on, aborts with message on failure.
#define TDM_CHECK(cond)                                      \
  if (!(cond))                                               \
  TDM_LOG(Fatal) << "Check failed: " #cond " "

#define TDM_CHECK_EQ(a, b) TDM_CHECK((a) == (b))
#define TDM_CHECK_NE(a, b) TDM_CHECK((a) != (b))
#define TDM_CHECK_LT(a, b) TDM_CHECK((a) < (b))
#define TDM_CHECK_LE(a, b) TDM_CHECK((a) <= (b))
#define TDM_CHECK_GT(a, b) TDM_CHECK((a) > (b))
#define TDM_CHECK_GE(a, b) TDM_CHECK((a) >= (b))

#ifndef NDEBUG
#define TDM_DCHECK(cond) TDM_CHECK(cond)
#else
#define TDM_DCHECK(cond) \
  if (false) TDM_LOG(Fatal)
#endif

#define TDM_DCHECK_EQ(a, b) TDM_DCHECK((a) == (b))
#define TDM_DCHECK_NE(a, b) TDM_DCHECK((a) != (b))
#define TDM_DCHECK_LT(a, b) TDM_DCHECK((a) < (b))
#define TDM_DCHECK_LE(a, b) TDM_DCHECK((a) <= (b))
#define TDM_DCHECK_GT(a, b) TDM_DCHECK((a) > (b))
#define TDM_DCHECK_GE(a, b) TDM_DCHECK((a) >= (b))

#endif  // TDMATCH_UTIL_LOGGING_H_
