#include "util/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/string_util.h"

namespace tdmatch {
namespace util {

Result<MmapFile> MmapFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError(StrFormat("cannot open %s: %s", path.c_str(),
                                     std::strerror(errno)));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError(StrFormat("cannot stat %s: %s", path.c_str(),
                                     std::strerror(err)));
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::InvalidArgument(path + ": not a regular file");
  }

  MmapFile file;
  file.path_ = path;
  file.size_ = static_cast<size_t>(st.st_size);
  if (file.size_ > 0) {
    void* mapped =
        ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (mapped == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      return Status::IOError(StrFormat("mmap of %s (%zu bytes) failed: %s",
                                       path.c_str(), file.size_,
                                       std::strerror(err)));
    }
    file.data_ = mapped;
  }
  // The mapping keeps its own reference to the file; the descriptor is not
  // needed afterwards.
  ::close(fd);
  return file;
}

MmapFile::~MmapFile() { Reset(); }

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(other.data_), size_(other.size_), path_(std::move(other.path_)) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    Reset();
    data_ = other.data_;
    size_ = other.size_;
    path_ = std::move(other.path_);
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void MmapFile::Reset() {
  if (data_ != nullptr) {
    ::munmap(data_, size_);
    data_ = nullptr;
  }
  size_ = 0;
}

}  // namespace util
}  // namespace tdmatch
