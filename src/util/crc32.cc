#include "util/crc32.h"

#include <array>

namespace tdmatch {
namespace util {

namespace {

/// The 256-entry lookup table for the reflected polynomial, computed once
/// at first use (byte-at-a-time Sarwate algorithm).
const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  const auto& table = Crc32Table();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace util
}  // namespace tdmatch
