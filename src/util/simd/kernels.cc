#include "util/simd/kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace tdmatch {
namespace simd {

#ifdef TDMATCH_SIMD_AVX2_COMPILED
namespace internal {
/// Defined in kernels_avx2.cc (compiled with -mavx2 -mfma).
const Kernels& Avx2Kernels();
}  // namespace internal
#endif

namespace {

const Kernels kScalarKernels = {
    "scalar",
    scalar::Dot,
    scalar::Axpy,
    scalar::Scale,
    scalar::ScaleInto,
    scalar::Add,
    scalar::SquaredNorm,
    scalar::Dot8,
    scalar::AdcScan,
};

bool EnvForcesScalar() {
  const char* v = std::getenv("TDMATCH_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

struct DispatchState {
  const Kernels* initial;
  bool forced_scalar_env;
};

/// Probed once; the env override is latched at first use so dispatch is
/// stable for the process lifetime (SetActiveIsa is the only mutation).
DispatchState& State() {
  static DispatchState state = [] {
    DispatchState s;
    s.forced_scalar_env = EnvForcesScalar();
    s.initial = &kScalarKernels;
#ifdef TDMATCH_SIMD_AVX2_COMPILED
    if (!s.forced_scalar_env && CpuHasAvx2Fma()) {
      s.initial = &internal::Avx2Kernels();
    }
#endif
    return s;
  }();
  return state;
}

std::atomic<const Kernels*>& ActivePtr() {
  static std::atomic<const Kernels*> ptr(State().initial);
  return ptr;
}

}  // namespace

const Kernels& Scalar() { return kScalarKernels; }

const Kernels& Active() {
  return *ActivePtr().load(std::memory_order_relaxed);
}

Isa ActiveIsa() {
  return &Active() == &kScalarKernels ? Isa::kScalar : Isa::kAvx2;
}

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool CpuHasAvx2Fma() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool BuildHasAvx2() {
#ifdef TDMATCH_SIMD_AVX2_COMPILED
  return true;
#else
  return false;
#endif
}

bool ForcedScalarByEnv() { return State().forced_scalar_env; }

Isa SetActiveIsa(Isa isa) {
  const Kernels* table = &kScalarKernels;
#ifdef TDMATCH_SIMD_AVX2_COMPILED
  if (isa == Isa::kAvx2 && CpuHasAvx2Fma()) {
    table = &internal::Avx2Kernels();
  }
#else
  (void)isa;
#endif
  ActivePtr().store(table, std::memory_order_relaxed);
  return table == &kScalarKernels ? Isa::kScalar : Isa::kAvx2;
}

}  // namespace simd
}  // namespace tdmatch
