#ifndef TDMATCH_UTIL_SIMD_KERNELS_H_
#define TDMATCH_UTIL_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace tdmatch {
namespace simd {

/// \brief Runtime-dispatched dense-float kernels — the shared hot-loop
/// layer under serving (cosine scans, k-means assignment, ADC code scans)
/// and training (dot/axpy).
///
/// Two implementations live behind one function table:
///  * scalar  — portable sequential loops, the bit-exact reference. These
///    are defined inline in this header (namespace simd::scalar) so
///    callers that *pin* the scalar path — the embedding trainers, whose
///    goldens and thread-matrix suites lock bit-identity — pay no call
///    overhead and keep codegen identical to the pre-kernel loops.
///  * avx2    — AVX2+FMA intrinsics (kernels_avx2.cc, compiled with
///    -mavx2 -mfma on x86-64 when the compiler supports it), selected at
///    runtime only when cpuid reports both features.
///
/// Dispatch rules:
///  * Active() probes the CPU once (first call) and returns the best
///    supported table.
///  * The environment variable TDMATCH_FORCE_SCALAR (any non-empty value
///    except "0") pins dispatch to scalar — CI runs the whole test suite
///    under both settings to prove scalar/SIMD parity on every PR.
///  * SetActiveIsa() overrides dispatch at runtime for tests; requests
///    for an ISA the CPU/build cannot run are clamped to scalar.
///
/// Parity contract (verified by tests/simd_kernels_test.cc):
///  * scalar is the reference; its results are bit-exact across runs and
///    thread counts by construction (plain sequential loops).
///  * Elementwise kernels (Axpy, Scale, ScaleInto, Add) differ from
///    scalar by at most 1 ulp per element on the AVX2 path (FMA fuses the
///    multiply-add rounding).
///  * Reductions (Dot, SquaredNorm, Dot8, AdcScan) reassociate the sum
///    into lanes, so they carry the usual O(eps * n) accumulation
///    difference; tests bound it relative to the scalar value.
///  * NaN propagation matches IEEE: a NaN anywhere in the inputs yields a
///    NaN reduction on both paths. Denormals are computed, not flushed
///    (no DAZ/FTZ is ever set by this library).
///
/// Because the AVX2 reductions are NOT bit-equal to scalar, anything
/// whose output is golden-locked (Word2Vec/Doc2Vec training) calls
/// simd::scalar::* directly and never dispatches; serving-side consumers
/// (ExactIndex, IvfIndex, k-means) dispatch through Active() and are
/// tested against behavioral thresholds instead of bit-identity.
struct Kernels {
  /// Human-readable ISA name ("scalar", "avx2").
  const char* name;
  /// Sequential dot product of two n-float slices.
  float (*dot)(const float* a, const float* b, size_t n);
  /// y += a * x (n floats).
  void (*axpy)(float a, const float* x, float* y, size_t n);
  /// x *= a (n floats).
  void (*scale)(float a, float* x, size_t n);
  /// y = a * x (n floats).
  void (*scale_into)(float a, const float* x, float* y, size_t n);
  /// y += x (n floats).
  void (*add)(const float* x, float* y, size_t n);
  /// Sum of squares of x (n floats).
  float (*squared_norm)(const float* x, size_t n);
  /// Batched 8-vector × 1-vector tile: out[q] = dot(rows[q], v, n) for
  /// q in [0, 8). One pass over v serves all eight rows (k-means
  /// assignment tiles 8 points against each centroid this way).
  void (*dot8)(const float* const rows[8], const float* v, size_t n,
               float out[8]);
  /// u8 ADC lookup-table scan: for each of num_codes PQ codes (m bytes
  /// each, contiguous), out[i] = sum over s of table[s * 256 + codes[i*m
  /// + s]]. `table` is the per-query m × 256 inner-product table.
  void (*adc_scan)(const uint8_t* codes, size_t num_codes, size_t m,
                   const float* table, float* out);
};

/// The portable reference table (see simd::scalar inline functions).
const Kernels& Scalar();

/// The dispatched table: AVX2+FMA when the build carries it and the CPU
/// reports it and TDMATCH_FORCE_SCALAR is not set; otherwise scalar.
const Kernels& Active();

enum class Isa { kScalar = 0, kAvx2 = 1 };

/// The ISA Active() currently dispatches to.
Isa ActiveIsa();
const char* IsaName(Isa isa);

/// Raw CPU probe (ignores the env override and SetActiveIsa).
bool CpuHasAvx2Fma();
/// True when this binary was compiled with the AVX2 kernel TU at all.
bool BuildHasAvx2();
/// True when TDMATCH_FORCE_SCALAR pinned dispatch at startup.
bool ForcedScalarByEnv();

/// Test hook: re-point Active() at `isa`, clamped to what the CPU and
/// build support (returns the ISA actually installed). Not thread-safe
/// against concurrent Active() users mid-query; call between workloads.
Isa SetActiveIsa(Isa isa);

/// Portable reference kernels, inline so bit-identity-pinned callers
/// (the trainers) inline them exactly like the historical loops.
namespace scalar {

inline float Dot(const float* a, const float* b, size_t n) {
  float acc = 0.0f;
  for (size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

inline void Axpy(float a, const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

inline void Scale(float a, float* x, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] *= a;
}

inline void ScaleInto(float a, const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] = a * x[i];
}

inline void Add(const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += x[i];
}

inline float SquaredNorm(const float* x, size_t n) {
  float acc = 0.0f;
  for (size_t i = 0; i < n; ++i) acc += x[i] * x[i];
  return acc;
}

/// Eight independent scalar dots — bit-identical to calling Dot eight
/// times, so forced-scalar runs reproduce the untiled code exactly.
inline void Dot8(const float* const rows[8], const float* v, size_t n,
                 float out[8]) {
  for (int q = 0; q < 8; ++q) out[q] = Dot(rows[q], v, n);
}

inline void AdcScan(const uint8_t* codes, size_t num_codes, size_t m,
                    const float* table, float* out) {
  for (size_t i = 0; i < num_codes; ++i) {
    const uint8_t* code = codes + i * m;
    float acc = 0.0f;
    for (size_t s = 0; s < m; ++s) {
      acc += table[s * 256 + code[s]];
    }
    out[i] = acc;
  }
}

}  // namespace scalar

/// Convenience wrappers routing through the dispatched table.
inline float Dot(const float* a, const float* b, size_t n) {
  return Active().dot(a, b, n);
}
inline void Axpy(float a, const float* x, float* y, size_t n) {
  Active().axpy(a, x, y, n);
}
inline float SquaredNorm(const float* x, size_t n) {
  return Active().squared_norm(x, n);
}
inline void Dot8(const float* const rows[8], const float* v, size_t n,
                 float out[8]) {
  Active().dot8(rows, v, n, out);
}
inline void AdcScan(const uint8_t* codes, size_t num_codes, size_t m,
                    const float* table, float* out) {
  Active().adc_scan(codes, num_codes, m, table, out);
}

}  // namespace simd
}  // namespace tdmatch

#endif  // TDMATCH_UTIL_SIMD_KERNELS_H_
