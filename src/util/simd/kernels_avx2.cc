// AVX2+FMA kernel implementations. This translation unit is compiled with
// -mavx2 -mfma (see src/util/CMakeLists.txt) and therefore must only be
// *executed* after the runtime cpuid probe in kernels.cc confirms both
// features — nothing here runs at static-init time, and the dispatcher
// never installs this table on an unsupported CPU.
//
// All loads/stores are unaligned (loadu/storeu): serving feeds these
// kernels rows gathered from mmap'd snapshot payloads that are only
// guaranteed 4-byte aligned.
#include "util/simd/kernels.h"

#ifdef TDMATCH_SIMD_AVX2_COMPILED

#include <immintrin.h>

namespace tdmatch {
namespace simd {
namespace internal {

namespace {

/// Horizontal sum of one 8-lane register. The reduction order is fixed by
/// the instruction sequence, so results are deterministic per ISA.
inline float HSum(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
  return _mm_cvtss_f32(s);
}

float DotAvx2(const float* a, const float* b, size_t n) {
  // Two accumulators hide the FMA latency chain; lane sums reassociate
  // the reduction, so this is parity-bounded (not bit-equal) vs scalar.
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
  }
  float acc = HSum(_mm256_add_ps(acc0, acc1));
  for (; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

void AxpyAvx2(float a, const float* x, float* y, size_t n) {
  const __m256 va = _mm256_set1_ps(a);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vy =
        _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i));
    _mm256_storeu_ps(y + i, vy);
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void ScaleAvx2(float a, float* x, size_t n) {
  const __m256 va = _mm256_set1_ps(a);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(va, _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) x[i] *= a;
}

void ScaleIntoAvx2(float a, const float* x, float* y, size_t n) {
  const __m256 va = _mm256_set1_ps(a);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_mul_ps(va, _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) y[i] = a * x[i];
}

void AddAvx2(const float* x, float* y, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_add_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}

float SquaredNormAvx2(const float* x, size_t n) {
  __m256 acc = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    acc = _mm256_fmadd_ps(v, v, acc);
  }
  float out = HSum(acc);
  for (; i < n; ++i) out += x[i] * x[i];
  return out;
}

void Dot8Avx2(const float* const rows[8], const float* v, size_t n,
              float out[8]) {
  // One pass over v feeds eight row accumulators: the 8×1 tile loads each
  // v chunk once instead of eight times (the k-means assignment shape).
  __m256 acc[8];
  for (int q = 0; q < 8; ++q) acc[q] = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vv = _mm256_loadu_ps(v + i);
    for (int q = 0; q < 8; ++q) {
      acc[q] = _mm256_fmadd_ps(_mm256_loadu_ps(rows[q] + i), vv, acc[q]);
    }
  }
  for (int q = 0; q < 8; ++q) out[q] = HSum(acc[q]);
  for (; i < n; ++i) {
    const float vi = v[i];
    for (int q = 0; q < 8; ++q) out[q] += rows[q][i] * vi;
  }
}

void AdcScanAvx2(const uint8_t* codes, size_t num_codes, size_t m,
                 const float* table, float* out) {
  // Eight subquantizers per gather: indices are s*256 + code[s], so one
  // i32 gather pulls eight table entries at once. Sub-8 tails (and any
  // m < 8) fall back to scalar lookups.
  const __m256i lane_base = _mm256_setr_epi32(0, 256, 512, 768, 1024, 1280,
                                              1536, 1792);
  for (size_t i = 0; i < num_codes; ++i) {
    const uint8_t* code = codes + i * m;
    __m256 acc = _mm256_setzero_ps();
    size_t s = 0;
    for (; s + 8 <= m; s += 8) {
      const __m256i idx8 = _mm256_cvtepu8_epi32(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(code + s)));
      const __m256i idx = _mm256_add_epi32(idx8, lane_base);
      acc = _mm256_add_ps(
          acc, _mm256_i32gather_ps(table + s * 256, idx, sizeof(float)));
    }
    float sum = HSum(acc);
    for (; s < m; ++s) sum += table[s * 256 + code[s]];
    out[i] = sum;
  }
}

const Kernels kAvx2Kernels = {
    "avx2",        DotAvx2,         AxpyAvx2, ScaleAvx2, ScaleIntoAvx2,
    AddAvx2,       SquaredNormAvx2, Dot8Avx2, AdcScanAvx2,
};

}  // namespace

const Kernels& Avx2Kernels() { return kAvx2Kernels; }

}  // namespace internal
}  // namespace simd
}  // namespace tdmatch

#endif  // TDMATCH_SIMD_AVX2_COMPILED
