#ifndef TDMATCH_UTIL_MMAP_FILE_H_
#define TDMATCH_UTIL_MMAP_FILE_H_

#include <cstddef>
#include <string>

#include "util/result.h"
#include "util/status.h"

namespace tdmatch {
namespace util {

/// \brief RAII read-only memory mapping of a whole file (POSIX mmap).
///
/// Opening is O(1) in the file size: the kernel maps the pages and faults
/// them in on first touch, so a multi-gigabyte snapshot "loads" instantly
/// and only the bytes actually read cost I/O. The mapping is MAP_PRIVATE
/// read-only; writes through data() are impossible by construction.
///
/// Move-only. The mapping lives until destruction — callers that hand out
/// pointers into it (serve::SnapshotView) must keep the MmapFile alive for
/// as long as the pointers circulate, which is why SnapshotView is shared
/// via shared_ptr.
class MmapFile {
 public:
  /// Maps `path` read-only. Empty files map successfully with size() == 0
  /// and a null data() (mmap of zero bytes is undefined, so none is made).
  static Result<MmapFile> Open(const std::string& path);

  MmapFile() = default;
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  const char* data() const { return static_cast<const char*>(data_); }
  size_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  void Reset();

  void* data_ = nullptr;
  size_t size_ = 0;
  std::string path_;
};

}  // namespace util
}  // namespace tdmatch

#endif  // TDMATCH_UTIL_MMAP_FILE_H_
