#include "util/string_util.h"

#include <algorithm>
#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace tdmatch {
namespace util {

std::vector<std::string> Split(std::string_view s, char delim,
                               bool skip_empty) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      if (i > start || !skip_empty) {
        out.emplace_back(s.substr(start, i - start));
      }
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool IsNumeric(std::string_view s) {
  if (s.empty()) return false;
  size_t i = 0;
  if (s[0] == '+' || s[0] == '-') i = 1;
  if (i == s.size()) return false;
  bool seen_digit = false;
  bool seen_dot = false;
  for (; i < s.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(s[i]))) {
      seen_digit = true;
    } else if (s[i] == '.' && !seen_dot) {
      seen_dot = true;
    } else {
      return false;
    }
  }
  return seen_digit;
}

bool ParseDouble(std::string_view s, double* out) {
  std::string buf(s);
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end == buf.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

size_t EditDistance(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return m;
  if (m == 0) return n;
  std::vector<size_t> prev(m + 1);
  std::vector<size_t> cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      size_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

}  // namespace util
}  // namespace tdmatch
