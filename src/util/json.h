#ifndef TDMATCH_UTIL_JSON_H_
#define TDMATCH_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace tdmatch {
namespace util {

/// \brief The one hand-rolled JSON implementation of the codebase.
///
/// Two consumers share it: the JSONL corpus loader (flat records only —
/// see JsonParseFlatRecord, extracted verbatim from corpus/loader.cc) and
/// the HTTP serving front end (full values via JsonParse + responses via
/// JsonWriter). No third-party dependency; strings support the standard
/// escapes including UTF-16 surrogate pairs.

/// \brief A parsed JSON value: null, bool, number, string, array, object.
///
/// Numbers keep both their source spelling (string_value()) and a parsed
/// double (number_value()); object member order is preserved.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  // null

  static JsonValue Bool(bool b) {
    JsonValue v;
    v.type_ = Type::kBool;
    v.bool_ = b;
    return v;
  }
  static JsonValue Number(double d, std::string spelling) {
    JsonValue v;
    v.type_ = Type::kNumber;
    v.num_ = d;
    v.str_ = std::move(spelling);
    return v;
  }
  static JsonValue String(std::string s) {
    JsonValue v;
    v.type_ = Type::kString;
    v.str_ = std::move(s);
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return num_; }
  /// String contents for strings; the source spelling for numbers.
  const std::string& string_value() const { return str_; }

  std::vector<JsonValue>& items() { return items_; }
  const std::vector<JsonValue>& items() const { return items_; }
  std::vector<std::pair<std::string, JsonValue>>& members() {
    return members_;
  }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// First member named `key` of an object, or nullptr (also for
  /// non-objects).
  const JsonValue* Find(std::string_view key) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses one complete JSON value; trailing non-space content is an error.
/// `max_depth` bounds array/object nesting so hostile input cannot blow the
/// stack.
Result<JsonValue> JsonParse(std::string_view text, size_t max_depth = 64);

/// One flat JSONL record: top-level scalar fields in appearance order.
using JsonFlatRecord = std::vector<std::pair<std::string, std::string>>;

/// Parses a flat JSON object the way the JSONL loaders have always read
/// records: scalars become strings (numbers keep their source spelling,
/// null becomes the empty string), nested arrays/objects are rejected —
/// records must be flat like CSV rows.
Status JsonParseFlatRecord(std::string_view line, JsonFlatRecord* out);

/// Appends `s` to `out` as a quoted JSON string (standard escapes; control
/// characters as \u00XX).
void JsonAppendQuoted(std::string_view s, std::string* out);

/// \brief Minimal streaming JSON writer — comma/key bookkeeping for the
/// HTTP response bodies.
///
/// Usage:
///   JsonWriter w;
///   w.BeginObject().Key("status").Value("ok").Key("n").Value(3).EndObject();
///   w.str()  // {"status":"ok","n":3}
///
/// Doubles are written in their shortest round-trippable spelling (strtod
/// reproduces the exact bits); non-finite values become null (JSON has no
/// NaN/inf).
class JsonWriter {
 public:
  JsonWriter& BeginObject() { return Open('{'); }
  JsonWriter& EndObject() { return Close('}'); }
  JsonWriter& BeginArray() { return Open('['); }
  JsonWriter& EndArray() { return Close(']'); }

  JsonWriter& Key(std::string_view k);

  JsonWriter& Value(std::string_view s);
  JsonWriter& Value(const char* s) { return Value(std::string_view(s)); }
  JsonWriter& Value(double d);
  JsonWriter& Value(bool b);
  JsonWriter& Value(int64_t i);
  JsonWriter& Value(uint64_t u);
  JsonWriter& Value(int i) { return Value(static_cast<int64_t>(i)); }
  JsonWriter& Null();

  const std::string& str() const { return out_; }

  /// Pre-sizes the output buffer (hot writers that know their rough line
  /// length avoid growth reallocations).
  void Reserve(size_t bytes) { out_.reserve(bytes); }

 private:
  JsonWriter& Open(char c);
  JsonWriter& Close(char c);
  /// Emits the separating comma unless this is a container's first element
  /// or the value directly follows its key.
  void Separate();

  std::string out_;
  std::vector<char> has_element_;
  bool after_key_ = false;
};

}  // namespace util
}  // namespace tdmatch

#endif  // TDMATCH_UTIL_JSON_H_
