#include "util/thread_pool.h"

#include <algorithm>

namespace tdmatch {
namespace util {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (tasks_.empty() && active_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(
    size_t n, size_t num_threads,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) return;
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads = std::min(num_threads, n);
  if (num_threads == 1) {
    // Run on the calling thread: same chunking semantics, no spawn/join
    // overhead for the sequential case.
    fn(0, n, 0);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  const size_t chunk = (n + num_threads - 1) / num_threads;
  for (size_t t = 0; t < num_threads; ++t) {
    const size_t begin = t * chunk;
    const size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    threads.emplace_back([&fn, begin, end, t] { fn(begin, end, t); });
  }
  for (auto& th : threads) th.join();
}

}  // namespace util
}  // namespace tdmatch
