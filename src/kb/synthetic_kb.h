#ifndef TDMATCH_KB_SYNTHETIC_KB_H_
#define TDMATCH_KB_SYNTHETIC_KB_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "kb/external_resource.h"

namespace tdmatch {
namespace kb {

/// Normalizes a surface label for lookup (e.g. lower-case + stemming so KB
/// entries line up with graph data-node labels).
using LabelNormalizer = std::function<std::string(const std::string&)>;

/// \brief In-memory knowledge graph standing in for ConceptNet / DBpedia /
/// WordNet (see DESIGN.md substitution table).
///
/// The scenario generators populate it from the same entity universe the
/// corpora are drawn from: a minority of edges are genuinely useful
/// cross-corpus bridges (starring-of, synonym-of, acronym expansion) and the
/// majority are distractors, reproducing the paper's observation that only
/// a few of Tarantino's 800+ DBpedia relations help matching.
class SyntheticKB : public ExternalResource {
 public:
  /// \param normalizer applied to labels both at insertion and at lookup;
  ///   identity when null.
  explicit SyntheticKB(LabelNormalizer normalizer = nullptr);

  /// Adds an undirected relation between two surface labels. The relation
  /// type is informational (kept for inspection / statistics).
  void AddRelation(const std::string& a, const std::string& b,
                   const std::string& relation_type = "related");

  std::vector<std::string> Related(const std::string& label) const override;
  bool Knows(const std::string& label) const override;
  std::string name() const override;

  /// Number of distinct (normalized) entities.
  size_t NumEntities() const { return adj_.size(); }
  /// Total number of stored (directed) relation entries / 2.
  size_t NumRelations() const { return num_relations_; }

  /// Relation-type histogram, for dataset statistics.
  std::unordered_map<std::string, size_t> RelationTypeCounts() const {
    return type_counts_;
  }

 private:
  std::string Normalize(const std::string& label) const;

  LabelNormalizer normalizer_;
  // normalized label -> (ordered) unique neighbor original labels
  std::unordered_map<std::string, std::vector<std::string>> adj_;
  std::unordered_map<std::string, std::unordered_set<std::string>> adj_seen_;
  std::unordered_map<std::string, size_t> type_counts_;
  size_t num_relations_ = 0;
};

}  // namespace kb
}  // namespace tdmatch

#endif  // TDMATCH_KB_SYNTHETIC_KB_H_
