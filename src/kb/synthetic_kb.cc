#include "kb/synthetic_kb.h"

#include "util/string_util.h"

namespace tdmatch {
namespace kb {

SyntheticKB::SyntheticKB(LabelNormalizer normalizer)
    : normalizer_(std::move(normalizer)) {}

std::string SyntheticKB::Normalize(const std::string& label) const {
  return normalizer_ ? normalizer_(label) : label;
}

void SyntheticKB::AddRelation(const std::string& a, const std::string& b,
                              const std::string& relation_type) {
  const std::string na = Normalize(a);
  const std::string nb = Normalize(b);
  if (na.empty() || nb.empty() || na == nb) return;
  bool added = false;
  if (adj_seen_[na].insert(b).second) {
    adj_[na].push_back(b);
    added = true;
  }
  if (adj_seen_[nb].insert(a).second) {
    adj_[nb].push_back(a);
    added = true;
  }
  if (added) {
    ++num_relations_;
    ++type_counts_[relation_type];
  }
}

std::vector<std::string> SyntheticKB::Related(const std::string& label) const {
  auto it = adj_.find(Normalize(label));
  if (it == adj_.end()) return {};
  return it->second;
}

bool SyntheticKB::Knows(const std::string& label) const {
  return adj_.count(Normalize(label)) > 0;
}

std::string SyntheticKB::name() const {
  return util::StrFormat("SyntheticKB(%zu entities, %zu relations)",
                         adj_.size(), num_relations_);
}

}  // namespace kb
}  // namespace tdmatch
