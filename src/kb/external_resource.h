#ifndef TDMATCH_KB_EXTERNAL_RESOURCE_H_
#define TDMATCH_KB_EXTERNAL_RESOURCE_H_

#include <string>
#include <vector>

namespace tdmatch {
namespace kb {

/// \brief Interface to an external knowledge resource used by graph
/// expansion (Alg. 2).
///
/// The paper plugs ConceptNet, DBpedia or WordNet here; this reproduction
/// plugs SyntheticKB. Lookup is by (normalized) surface label — exactly how
/// the expansion algorithm addresses data nodes.
class ExternalResource {
 public:
  virtual ~ExternalResource() = default;

  /// All labels related to `label` in the resource. Empty when unknown.
  virtual std::vector<std::string> Related(const std::string& label) const = 0;

  /// True when the resource knows the label (may be cheaper than Related).
  virtual bool Knows(const std::string& label) const = 0;

  /// Human-readable name ("ConceptNet", "DBpedia", "SyntheticKB(...)").
  virtual std::string name() const = 0;
};

}  // namespace kb
}  // namespace tdmatch

#endif  // TDMATCH_KB_EXTERNAL_RESOURCE_H_
