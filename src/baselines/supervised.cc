#include "baselines/supervised.h"

#include <unordered_set>

#include "util/rng.h"

namespace tdmatch {
namespace baselines {

namespace {

/// Samples training pairs: for each train query, every gold candidate is a
/// positive; negatives are drawn uniformly from the non-gold candidates.
struct PairSample {
  size_t query;
  size_t candidate;
  double label;
};

std::vector<PairSample> SamplePairs(const corpus::Scenario& scenario,
                                    const std::vector<int32_t>& train_queries,
                                    size_t negatives_per_positive,
                                    uint64_t seed) {
  util::Rng rng(seed);
  std::vector<PairSample> out;
  const size_t nc = scenario.second.NumDocs();
  for (int32_t q : train_queries) {
    const auto& gold = scenario.gold[static_cast<size_t>(q)];
    if (gold.empty()) continue;
    std::unordered_set<int32_t> gold_set(gold.begin(), gold.end());
    for (int32_t g : gold) {
      out.push_back(
          {static_cast<size_t>(q), static_cast<size_t>(g), 1.0});
      for (size_t n = 0; n < negatives_per_positive; ++n) {
        int32_t neg = static_cast<int32_t>(rng.UniformInt(nc));
        if (gold_set.count(neg) > 0) continue;
        out.push_back(
            {static_cast<size_t>(q), static_cast<size_t>(neg), 0.0});
      }
    }
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// RANK*
// ---------------------------------------------------------------------------

PairwiseRanker::PairwiseRanker(SupervisedOptions options)
    : options_(options) {}

util::Status PairwiseRanker::Fit(const corpus::Scenario& scenario,
                                 const std::vector<int32_t>& train_queries) {
  if (train_queries.empty()) {
    return util::Status::InvalidArgument("RANK* is supervised");
  }
  features_.Fit(scenario);
  num_candidates_ = scenario.second.NumDocs();

  util::Rng rng(options_.seed);
  std::vector<std::pair<std::vector<double>, std::vector<double>>> pairs;
  for (int32_t q : train_queries) {
    const auto& gold = scenario.gold[static_cast<size_t>(q)];
    if (gold.empty()) continue;
    std::unordered_set<int32_t> gold_set(gold.begin(), gold.end());
    for (int32_t g : gold) {
      auto pos = features_.RerankerFeatures(static_cast<size_t>(q),
                                            static_cast<size_t>(g));
      for (size_t n = 0; n < options_.negatives_per_positive; ++n) {
        int32_t neg = static_cast<int32_t>(rng.UniformInt(num_candidates_));
        if (gold_set.count(neg) > 0) continue;
        pairs.emplace_back(
            pos, features_.RerankerFeatures(static_cast<size_t>(q),
                                            static_cast<size_t>(neg)));
      }
    }
  }
  return model_.FitPairwise(pairs);
}

std::vector<double> PairwiseRanker::ScoreCandidates(size_t query_index) const {
  std::vector<double> scores(num_candidates_);
  for (size_t c = 0; c < num_candidates_; ++c) {
    scores[c] = model_.Decision(features_.RerankerFeatures(query_index, c));
  }
  return scores;
}

// ---------------------------------------------------------------------------
// DITTO*
// ---------------------------------------------------------------------------

DittoProxy::DittoProxy(SupervisedOptions options) : options_(options) {}

util::Status DittoProxy::Fit(const corpus::Scenario& scenario,
                             const std::vector<int32_t>& train_queries) {
  if (train_queries.empty()) {
    return util::Status::InvalidArgument("DITTO* is supervised");
  }
  features_.Fit(scenario);
  num_candidates_ = scenario.second.NumDocs();
  auto extract = [&](size_t q, size_t c) {
    auto f = features_.HashedInteraction(q, c, /*truncate_query=*/true);
    auto surface = features_.SurfaceFeatures(q, c);
    f.insert(f.end(), surface.begin(), surface.end());
    return f;
  };
  std::vector<Example> examples;
  for (const auto& p : SamplePairs(scenario, train_queries,
                                   options_.negatives_per_positive,
                                   options_.seed)) {
    examples.push_back({extract(p.query, p.candidate), p.label});
  }
  return model_.Fit(examples);
}

std::vector<double> DittoProxy::ScoreCandidates(size_t query_index) const {
  std::vector<double> scores(num_candidates_);
  for (size_t c = 0; c < num_candidates_; ++c) {
    auto f = features_.HashedInteraction(query_index, c, /*truncate_query=*/true);
    auto surface = features_.SurfaceFeatures(query_index, c);
    f.insert(f.end(), surface.begin(), surface.end());
    scores[c] = model_.Predict(f);
  }
  return scores;
}

// ---------------------------------------------------------------------------
// DEEP-M*
// ---------------------------------------------------------------------------

DeepMatcherProxy::DeepMatcherProxy(SupervisedOptions options,
                                   size_t max_columns)
    : options_(options), max_columns_(max_columns) {}

util::Status DeepMatcherProxy::Fit(const corpus::Scenario& scenario,
                                   const std::vector<int32_t>& train_queries) {
  if (train_queries.empty()) {
    return util::Status::InvalidArgument("DEEP-M* is supervised");
  }
  features_.Fit(scenario);
  num_candidates_ = scenario.second.NumDocs();
  std::vector<Example> examples;
  for (const auto& p : SamplePairs(scenario, train_queries,
                                   options_.negatives_per_positive,
                                   options_.seed)) {
    examples.push_back(
        {features_.ColumnFeatures(p.query, p.candidate, max_columns_),
         p.label});
  }
  return model_.Fit(examples);
}

std::vector<double> DeepMatcherProxy::ScoreCandidates(
    size_t query_index) const {
  std::vector<double> scores(num_candidates_);
  for (size_t c = 0; c < num_candidates_; ++c) {
    scores[c] =
        model_.Predict(features_.ColumnFeatures(query_index, c, max_columns_));
  }
  return scores;
}

// ---------------------------------------------------------------------------
// TAPAS*
// ---------------------------------------------------------------------------

TapasProxy::TapasProxy(SupervisedOptions options, size_t max_columns,
                       size_t query_prefix_tokens)
    : options_(options),
      max_columns_(max_columns),
      query_prefix_tokens_(query_prefix_tokens) {}

util::Status TapasProxy::Fit(const corpus::Scenario& scenario,
                             const std::vector<int32_t>& train_queries) {
  if (train_queries.empty()) {
    return util::Status::InvalidArgument("TAPAS* is supervised");
  }
  features_.Fit(scenario);
  num_candidates_ = scenario.second.NumDocs();
  auto extract = [&](size_t q, size_t c) {
    auto f = features_.HashedInteraction(q, c, /*truncate_query=*/true);
    auto cols =
        features_.ColumnFeatures(q, c, max_columns_, query_prefix_tokens_);
    f.insert(f.end(), cols.begin(), cols.end());
    return f;
  };
  std::vector<Example> examples;
  for (const auto& p : SamplePairs(scenario, train_queries,
                                   options_.negatives_per_positive,
                                   options_.seed)) {
    examples.push_back({extract(p.query, p.candidate), p.label});
  }
  return model_.Fit(examples);
}

std::vector<double> TapasProxy::ScoreCandidates(size_t query_index) const {
  std::vector<double> scores(num_candidates_);
  for (size_t c = 0; c < num_candidates_; ++c) {
    auto f = features_.HashedInteraction(query_index, c,
                                         /*truncate_query=*/true);
    auto cols = features_.ColumnFeatures(query_index, c, max_columns_,
                                         query_prefix_tokens_);
    f.insert(f.end(), cols.begin(), cols.end());
    scores[c] = model_.Predict(f);
  }
  return scores;
}

}  // namespace baselines
}  // namespace tdmatch
