#ifndef TDMATCH_BASELINES_FEATURES_H_
#define TDMATCH_BASELINES_FEATURES_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "corpus/corpus.h"
#include "text/tfidf.h"
#include "text/tokenizer.h"

namespace tdmatch {
namespace baselines {

/// \brief Pairwise lexical features shared by the supervised proxies.
///
/// Fitted once per scenario: tokenizes and caches both corpora, fits
/// TF-IDF over the union. Feature vector for a (query, candidate) pair:
///   [tfidf cosine, jaccard, containment(q in c), idf-weighted containment,
///    number overlap, length ratio, char-3gram cosine]
class PairFeatures {
 public:
  PairFeatures() = default;

  /// Caches tokens/vectors for all documents of the scenario.
  void Fit(const corpus::Scenario& scenario);

  /// Feature vector for query q vs candidate c (indices into the corpora).
  std::vector<double> Extract(size_t q, size_t c) const;

  /// Number of features produced by Extract.
  static constexpr size_t kNumFeatures = 7;

  /// Per-column containment features for table candidates (DeepMatcher* /
  /// TAPAS* proxies): for each of the first `max_columns` columns, the
  /// fraction of the column's cell tokens present in the query. Pads with
  /// zeros for text candidates. `query_prefix_tokens` (0 = unlimited)
  /// truncates the query to its first N tokens, modeling the input-length
  /// truncation of the transformer baselines.
  std::vector<double> ColumnFeatures(size_t q, size_t c, size_t max_columns,
                                     size_t query_prefix_tokens = 0) const;

  /// Surface overlap features with no corpus-statistics weighting:
  /// [jaccard, containment, number overlap, length ratio, char-3gram
  /// cosine]. The shallow floor under the learned hashed interactions.
  std::vector<double> SurfaceFeatures(size_t q, size_t c) const;
  static constexpr size_t kNumSurfaceFeatures = 5;

  /// Shallow reranker features (RANK* proxy, Shaar et al. style): the
  /// claim-reranker scores candidates with a generic sentence-encoder
  /// cosine plus surface overlap — no corpus-statistics weighting.
  std::vector<double> RerankerFeatures(size_t q, size_t c) const;
  static constexpr size_t kNumRerankerFeatures = 4;

  /// Learned-representation features (DITTO* / TAPAS* proxies): the
  /// elementwise product of L2-normalized hashed bag-of-words vectors of
  /// the two documents (kHashBowDim buckets). Each dimension is a bucket of
  /// words whose weight the downstream classifier must LEARN from its
  /// annotations — mirroring how the fine-tuned transformers learn token
  /// importance instead of receiving TF-IDF priors.
  /// When `truncate_query` is set, only the first kTruncTokens tokens of
  /// the query contribute — the transformers' input-length limit, which is
  /// what hurts them on long reviews (IMDb averages 16 sentences).
  std::vector<double> HashedInteraction(size_t q, size_t c,
                                        bool truncate_query = false) const;
  static constexpr size_t kHashBowDim = 256;
  static constexpr size_t kTruncTokens = 32;

 private:
  struct DocCache {
    std::vector<std::string> tokens;
    std::unordered_set<std::string> token_set;
    std::unordered_set<std::string> numbers;
    std::unordered_map<std::string, double> tfidf_vec;
    std::unordered_map<std::string, double> char_vec;
    std::vector<float> sbe_vec;       // generic sentence-encoder embedding
    std::vector<double> hashed_bow;   // normalized hashed bag of words
    std::vector<double> hashed_bow_trunc;  // same, first kTruncTokens only
  };

  DocCache BuildCache(const std::string& text) const;
  static double SparseCosine(
      const std::unordered_map<std::string, double>& a,
      const std::unordered_map<std::string, double>& b);

  const corpus::Scenario* scenario_ = nullptr;
  text::Tokenizer tokenizer_;
  text::TfIdf tfidf_;
  std::vector<DocCache> queries_;
  std::vector<DocCache> candidates_;
};

}  // namespace baselines
}  // namespace tdmatch

#endif  // TDMATCH_BASELINES_FEATURES_H_
