#include "baselines/features.h"

#include <algorithm>
#include <cmath>

#include "baselines/sbe.h"
#include "embed/embedding_table.h"
#include "util/string_util.h"

namespace tdmatch {
namespace baselines {

namespace {

uint64_t FnvHash(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (char ch : s) {
    h ^= static_cast<uint8_t>(ch);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

PairFeatures::DocCache PairFeatures::BuildCache(
    const std::string& text) const {
  DocCache c;
  c.tokens = tokenizer_.Tokenize(text);
  c.token_set.insert(c.tokens.begin(), c.tokens.end());
  for (const auto& t : c.tokens) {
    if (util::IsNumeric(t)) c.numbers.insert(t);
  }
  c.tfidf_vec = tfidf_.Vectorize(c.tokens);

  // Generic pre-trained-style sentence embedding (no corpus statistics).
  static const HashSentenceEncoder kEncoder{HashSentenceEncoder::Options{}};
  c.sbe_vec = kEncoder.Encode(text);

  // Hashed bag of words, L2 normalized; plus the truncated-input variant.
  auto build_bow = [](const std::vector<std::string>& tokens, size_t limit) {
    std::vector<double> bow(kHashBowDim, 0.0);
    const size_t upto = limit == 0 ? tokens.size()
                                   : std::min(limit, tokens.size());
    for (size_t i = 0; i < upto; ++i) {
      bow[FnvHash(tokens[i]) % kHashBowDim] += 1.0;
    }
    double norm = 0.0;
    for (double v : bow) norm += v * v;
    norm = std::sqrt(norm);
    if (norm > 0) {
      for (double& v : bow) v /= norm;
    }
    return bow;
  };
  c.hashed_bow = build_bow(c.tokens, 0);
  c.hashed_bow_trunc = build_bow(c.tokens, kTruncTokens);
  // Char 3-gram counts over the concatenated lower-cased text.
  std::string flat = util::ToLower(text);
  for (size_t i = 0; i + 3 <= flat.size(); ++i) {
    c.char_vec[flat.substr(i, 3)] += 1.0;
  }
  double cnorm = 0.0;
  for (const auto& [k, v] : c.char_vec) cnorm += v * v;
  cnorm = std::sqrt(cnorm);
  if (cnorm > 0) {
    for (auto& [k, v] : c.char_vec) v /= cnorm;
  }
  return c;
}

void PairFeatures::Fit(const corpus::Scenario& scenario) {
  scenario_ = &scenario;
  // TF-IDF fitted over all documents of both corpora.
  std::vector<std::vector<std::string>> all_tokens;
  for (size_t i = 0; i < scenario.first.NumDocs(); ++i) {
    all_tokens.push_back(tokenizer_.Tokenize(scenario.first.DocText(i)));
  }
  for (size_t i = 0; i < scenario.second.NumDocs(); ++i) {
    all_tokens.push_back(tokenizer_.Tokenize(scenario.second.DocText(i)));
  }
  tfidf_.Fit(all_tokens);

  queries_.clear();
  candidates_.clear();
  queries_.reserve(scenario.first.NumDocs());
  for (size_t i = 0; i < scenario.first.NumDocs(); ++i) {
    queries_.push_back(BuildCache(scenario.first.DocText(i)));
  }
  candidates_.reserve(scenario.second.NumDocs());
  for (size_t i = 0; i < scenario.second.NumDocs(); ++i) {
    candidates_.push_back(BuildCache(scenario.second.DocText(i)));
  }
}

double PairFeatures::SparseCosine(
    const std::unordered_map<std::string, double>& a,
    const std::unordered_map<std::string, double>& b) {
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& big = a.size() <= b.size() ? b : a;
  double dot = 0.0;
  for (const auto& [k, v] : small) {
    auto it = big.find(k);
    if (it != big.end()) dot += v * it->second;
  }
  return dot;
}

std::vector<double> PairFeatures::Extract(size_t q, size_t c) const {
  const DocCache& Q = queries_[q];
  const DocCache& C = candidates_[c];

  size_t inter = 0;
  for (const auto& t : Q.token_set) inter += C.token_set.count(t);
  const size_t uni = Q.token_set.size() + C.token_set.size() - inter;
  const double jaccard =
      uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
  const double containment =
      Q.token_set.empty()
          ? 0.0
          : static_cast<double>(inter) /
                static_cast<double>(Q.token_set.size());

  // IDF-weighted containment: rare shared tokens count more.
  double idf_shared = 0.0, idf_total = 0.0;
  for (const auto& t : Q.token_set) {
    const double idf = tfidf_.Idf(t);
    idf_total += idf;
    if (C.token_set.count(t) > 0) idf_shared += idf;
  }
  const double idf_containment = idf_total == 0 ? 0.0 : idf_shared / idf_total;

  size_t num_inter = 0;
  for (const auto& n : Q.numbers) num_inter += C.numbers.count(n);
  const double number_overlap =
      Q.numbers.empty() ? 0.0
                        : static_cast<double>(num_inter) /
                              static_cast<double>(Q.numbers.size());

  const double len_ratio =
      Q.tokens.empty() || C.tokens.empty()
          ? 0.0
          : static_cast<double>(std::min(Q.tokens.size(), C.tokens.size())) /
                static_cast<double>(
                    std::max(Q.tokens.size(), C.tokens.size()));

  return {SparseCosine(Q.tfidf_vec, C.tfidf_vec),
          jaccard,
          containment,
          idf_containment,
          number_overlap,
          len_ratio,
          SparseCosine(Q.char_vec, C.char_vec)};
}

std::vector<double> PairFeatures::RerankerFeatures(size_t q, size_t c) const {
  const DocCache& Q = queries_[q];
  const DocCache& C = candidates_[c];
  size_t inter = 0;
  for (const auto& t : Q.token_set) inter += C.token_set.count(t);
  const size_t uni = Q.token_set.size() + C.token_set.size() - inter;
  const double jaccard =
      uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
  const double len_ratio =
      Q.tokens.empty() || C.tokens.empty()
          ? 0.0
          : static_cast<double>(std::min(Q.tokens.size(), C.tokens.size())) /
                static_cast<double>(
                    std::max(Q.tokens.size(), C.tokens.size()));
  return {embed::EmbeddingTable::CosineVec(Q.sbe_vec, C.sbe_vec),
          SparseCosine(Q.char_vec, C.char_vec), jaccard, len_ratio};
}

std::vector<double> PairFeatures::HashedInteraction(
    size_t q, size_t c, bool truncate_query) const {
  const DocCache& Q = queries_[q];
  const DocCache& C = candidates_[c];
  const std::vector<double>& qbow =
      truncate_query ? Q.hashed_bow_trunc : Q.hashed_bow;
  std::vector<double> out(kHashBowDim);
  for (size_t d = 0; d < kHashBowDim; ++d) {
    // Scaled so typical non-zero products are O(1) for the SGD trainers.
    out[d] = qbow[d] * C.hashed_bow[d] * 8.0;
  }
  return out;
}

std::vector<double> PairFeatures::ColumnFeatures(
    size_t q, size_t c, size_t max_columns,
    size_t query_prefix_tokens) const {
  std::vector<double> out(max_columns, 0.0);
  const corpus::Table* table = scenario_->second.table();
  if (table == nullptr) return out;
  const DocCache& Q = queries_[q];
  // Optional input truncation: transformers see only a bounded prefix.
  std::unordered_set<std::string> visible;
  const std::unordered_set<std::string>* tokens = &Q.token_set;
  if (query_prefix_tokens > 0 && Q.tokens.size() > query_prefix_tokens) {
    visible.insert(Q.tokens.begin(),
                   Q.tokens.begin() +
                       static_cast<std::ptrdiff_t>(query_prefix_tokens));
    tokens = &visible;
  }
  const size_t ncols = std::min(max_columns, table->NumColumns());
  for (size_t col = 0; col < ncols; ++col) {
    auto cell_tokens = tokenizer_.Tokenize(table->cell(c, col));
    if (cell_tokens.empty()) continue;
    size_t hit = 0;
    for (const auto& t : cell_tokens) hit += tokens->count(t);
    out[col] = static_cast<double>(hit) /
               static_cast<double>(cell_tokens.size());
  }
  return out;
}

std::vector<double> PairFeatures::SurfaceFeatures(size_t q, size_t c) const {
  auto full = Extract(q, c);
  // Extract() layout: [tfidf_cos, jaccard, containment, idf_containment,
  // number_overlap, len_ratio, char_cos] — keep only the weighting-free
  // surface signals (no corpus statistics, no query-normalized
  // containment / per-type number matching, which would amount to a
  // hand-tuned ranker rather than a learned one).
  return {full[1], full[5], full[6], 0.0, 0.0};
}

}  // namespace baselines
}  // namespace tdmatch
