#include "baselines/lbert.h"

#include <cmath>
#include <unordered_set>

#include "util/rng.h"
#include "util/string_util.h"

namespace tdmatch {
namespace baselines {

namespace {
uint64_t Fnv(const std::string& s, uint64_t seed) {
  uint64_t h = seed ^ 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}
}  // namespace

LBertProxy::LBertProxy() : LBertProxy(Options{}) {}

LBertProxy::LBertProxy(Options options) : options_(options) {}

std::vector<double> LBertProxy::Featurize(const std::string& text) const {
  std::vector<double> v(static_cast<size_t>(options_.feature_dim), 0.0);
  for (const auto& tok : tokenizer_.Tokenize(text)) {
    uint64_t h = Fnv(tok, options_.hash_seed);
    v[static_cast<size_t>(
        h % static_cast<uint64_t>(options_.feature_dim))] += 1.0;
    // Subword (char 3-gram) features give some OOV generalization.
    std::string padded = "^" + tok + "$";
    for (size_t i = 0; i + 3 <= padded.size(); ++i) {
      uint64_t ch = Fnv(padded.substr(i, 3), options_.hash_seed ^ 0x3);
      v[static_cast<size_t>(
          ch % static_cast<uint64_t>(options_.feature_dim))] += 0.3;
    }
  }
  // L2 normalization keeps the SGD well-conditioned.
  double norm = 0.0;
  for (double x : v) norm += x * x;
  norm = std::sqrt(norm);
  if (norm > 0) {
    for (double& x : v) x /= norm;
  }
  return v;
}

util::Status LBertProxy::Fit(const corpus::Scenario& scenario,
                             const std::vector<int32_t>& train_queries) {
  if (train_queries.empty()) {
    return util::Status::InvalidArgument("L-BE* is supervised");
  }
  const size_t num_concepts = scenario.second.NumDocs();
  per_concept_.assign(num_concepts,
                      LogisticRegression(options_.logreg));
  concept_trained_.assign(num_concepts, false);

  // Cache features for all queries (train + test share the extractor).
  query_features_.clear();
  query_features_.reserve(scenario.first.NumDocs());
  for (size_t q = 0; q < scenario.first.NumDocs(); ++q) {
    query_features_.push_back(Featurize(scenario.first.DocText(q)));
  }

  // Group train docs per concept.
  std::vector<std::vector<int32_t>> positives(num_concepts);
  for (int32_t q : train_queries) {
    for (int32_t c : scenario.gold[static_cast<size_t>(q)]) {
      positives[static_cast<size_t>(c)].push_back(q);
    }
  }

  util::Rng rng(options_.seed);
  for (size_t c = 0; c < num_concepts; ++c) {
    if (positives[c].empty()) continue;
    std::unordered_set<int32_t> pos_set(positives[c].begin(),
                                        positives[c].end());
    std::vector<Example> examples;
    for (int32_t q : positives[c]) {
      examples.push_back({query_features_[static_cast<size_t>(q)], 1.0});
      for (size_t n = 0; n < options_.negatives_per_positive; ++n) {
        int32_t neg = train_queries[static_cast<size_t>(
            rng.UniformInt(train_queries.size()))];
        if (pos_set.count(neg) > 0) continue;
        examples.push_back({query_features_[static_cast<size_t>(neg)], 0.0});
      }
    }
    TDM_RETURN_NOT_OK(per_concept_[c].Fit(examples));
    concept_trained_[c] = true;
  }
  return util::Status::OK();
}

std::vector<double> LBertProxy::ScoreCandidates(size_t query_index) const {
  std::vector<double> scores(per_concept_.size(), 0.0);
  const auto& f = query_features_[query_index];
  for (size_t c = 0; c < per_concept_.size(); ++c) {
    scores[c] = concept_trained_[c] ? per_concept_[c].Predict(f) : 0.0;
  }
  return scores;
}

}  // namespace baselines
}  // namespace tdmatch
