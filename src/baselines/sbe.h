#ifndef TDMATCH_BASELINES_SBE_H_
#define TDMATCH_BASELINES_SBE_H_

#include <string>
#include <vector>

#include "match/method.h"
#include "text/tfidf.h"
#include "text/tokenizer.h"

namespace tdmatch {
namespace baselines {

/// \brief "S-BE": the SentenceBERT stand-in (see DESIGN.md).
///
/// A deterministic sentence encoder: signed hashing of word tokens
/// (IDF-weighted) blended with char-3-gram hashing, L2-normalized. Like a
/// real generic pre-trained encoder it handles common-word paraphrase text
/// reasonably (shared subwords) but has no way to relate domain-specific
/// terms, acronyms, or table semantics — the comparative weakness the
/// paper's tables document.
class HashSentenceEncoder : public match::MatchMethod {
 public:
  struct Options {
    int dim = 128;
    double char_weight = 0.35;
    /// Cap on the per-token IDF weight: a frozen pre-trained encoder does
    /// not give out-of-corpus tokens unbounded importance.
    double max_token_weight = 4.0;
    uint64_t hash_seed = 0xbee;
  };

  HashSentenceEncoder();  // default options
  explicit HashSentenceEncoder(Options options);

  util::Status Fit(const corpus::Scenario& scenario,
                   const std::vector<int32_t>& train_queries) override;
  std::vector<double> ScoreCandidates(size_t query_index) const override;
  std::string name() const override { return "S-BE"; }

  /// Encodes an arbitrary sentence (exposed for the Fig. 10 combination
  /// and for tests).
  std::vector<float> Encode(const std::string& text) const;

 private:
  Options options_;
  text::Tokenizer tokenizer_;
  text::TfIdf tfidf_;
  std::vector<std::vector<float>> query_vecs_;
  std::vector<std::vector<float>> candidate_vecs_;
};

}  // namespace baselines
}  // namespace tdmatch

#endif  // TDMATCH_BASELINES_SBE_H_
