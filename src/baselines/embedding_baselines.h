#ifndef TDMATCH_BASELINES_EMBEDDING_BASELINES_H_
#define TDMATCH_BASELINES_EMBEDDING_BASELINES_H_

#include <string>
#include <vector>

#include "embed/doc2vec.h"
#include "embed/word2vec.h"
#include "match/method.h"
#include "text/preprocess.h"
#include "text/vocabulary.h"

namespace tdmatch {
namespace baselines {

/// \brief "W2VEC": Word2Vec trained on the serialized documents of both
/// corpora (tuples via [COL]/[VAL]); a document is the mean of its token
/// vectors (§V "Baselines").
class Word2VecBaseline : public match::MatchMethod {
 public:
  explicit Word2VecBaseline(embed::Word2VecOptions options = {
      .dim = 48, .window = 5, .cbow = false, .negative = 5,
      .initial_lr = 0.025, .epochs = 8, .subsample = 0.0, .threads = 4,
      .seed = 21});

  util::Status Fit(const corpus::Scenario& scenario,
                   const std::vector<int32_t>& train_queries) override;
  std::vector<double> ScoreCandidates(size_t query_index) const override;
  std::string name() const override { return "W2VEC"; }

 private:
  embed::Word2VecOptions options_;
  std::vector<std::vector<float>> query_vecs_;
  std::vector<std::vector<float>> candidate_vecs_;
};

/// \brief "D2VEC": Doc2Vec (PV-DBOW) over the documents of both corpora;
/// matching compares trained document vectors directly.
class Doc2VecBaseline : public match::MatchMethod {
 public:
  // 40 epochs: the pre-parallel trainer's stalled LR schedule effectively
  // trained every epoch at the full initial_lr; the fixed linear decay
  // halves the average step size, so the epoch budget doubles to keep the
  // same total update mass (Audit exact_r@5 drops ~0.16 at 20 epochs).
  explicit Doc2VecBaseline(embed::Doc2VecOptions options = {
      .dim = 48, .negative = 5, .initial_lr = 0.05, .epochs = 40,
      .threads = 4, .seed = 22});

  util::Status Fit(const corpus::Scenario& scenario,
                   const std::vector<int32_t>& train_queries) override;
  std::vector<double> ScoreCandidates(size_t query_index) const override;
  std::string name() const override { return "D2VEC"; }

 private:
  embed::Doc2VecOptions options_;
  std::vector<std::vector<float>> query_vecs_;
  std::vector<std::vector<float>> candidate_vecs_;
};

/// Serializes a corpus document for the sequence baselines: tuples become
/// "[COL] c [VAL] v ..." sentences, text/taxonomy docs pass through.
std::string SerializeDoc(const corpus::Corpus& corpus, size_t index);

}  // namespace baselines
}  // namespace tdmatch

#endif  // TDMATCH_BASELINES_EMBEDDING_BASELINES_H_
