#include "baselines/sbe.h"

#include <cmath>

#include "embed/embedding_table.h"
#include "match/top_k.h"
#include "util/string_util.h"

namespace tdmatch {
namespace baselines {

namespace {
uint64_t Fnv(const std::string& s, uint64_t seed) {
  uint64_t h = seed ^ 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}
}  // namespace

HashSentenceEncoder::HashSentenceEncoder()
    : HashSentenceEncoder(Options{}) {}

HashSentenceEncoder::HashSentenceEncoder(Options options)
    : options_(options) {}

std::vector<float> HashSentenceEncoder::Encode(const std::string& text) const {
  const int dim = options_.dim;
  std::vector<float> v(static_cast<size_t>(dim), 0.0f);
  auto tokens = tokenizer_.Tokenize(text);
  for (const auto& tok : tokens) {
    double w = tfidf_.num_docs() > 0 ? tfidf_.Idf(tok) : 1.0;
    if (w > options_.max_token_weight) w = options_.max_token_weight;
    // Word component.
    uint64_t h = Fnv(tok, options_.hash_seed);
    const float sign = (h >> 32) & 1 ? 1.0f : -1.0f;
    v[static_cast<size_t>(h % static_cast<uint64_t>(dim))] +=
        static_cast<float>((1.0 - options_.char_weight) * w) * sign;
    // Char 3-gram component.
    std::string padded = "^" + tok + "$";
    const size_t n_grams = padded.size() >= 3 ? padded.size() - 2 : 0;
    for (size_t i = 0; i + 3 <= padded.size(); ++i) {
      uint64_t ch = Fnv(padded.substr(i, 3), options_.hash_seed ^ 0x77);
      const float csign = (ch >> 32) & 1 ? 1.0f : -1.0f;
      v[static_cast<size_t>(ch % static_cast<uint64_t>(dim))] +=
          static_cast<float>(options_.char_weight * w /
                             static_cast<double>(n_grams)) *
          csign;
    }
  }
  embed::EmbeddingTable::Normalize(&v);
  return v;
}

util::Status HashSentenceEncoder::Fit(
    const corpus::Scenario& scenario,
    const std::vector<int32_t>& train_queries) {
  (void)train_queries;  // unsupervised
  // IDF statistics play the role of the frozen token weighting a
  // pre-trained encoder carries; fitted over both corpora so template
  // words are appropriately discounted.
  std::vector<std::vector<std::string>> docs;
  for (size_t i = 0; i < scenario.first.NumDocs(); ++i) {
    docs.push_back(tokenizer_.Tokenize(scenario.first.DocText(i)));
  }
  for (size_t i = 0; i < scenario.second.NumDocs(); ++i) {
    docs.push_back(tokenizer_.Tokenize(scenario.second.DocText(i)));
  }
  tfidf_.Fit(docs);

  candidate_vecs_.clear();
  candidate_vecs_.reserve(scenario.second.NumDocs());
  for (size_t i = 0; i < scenario.second.NumDocs(); ++i) {
    candidate_vecs_.push_back(Encode(scenario.second.DocText(i)));
  }
  query_vecs_.clear();
  query_vecs_.reserve(scenario.first.NumDocs());
  for (size_t i = 0; i < scenario.first.NumDocs(); ++i) {
    query_vecs_.push_back(Encode(scenario.first.DocText(i)));
  }
  return util::Status::OK();
}

std::vector<double> HashSentenceEncoder::ScoreCandidates(
    size_t query_index) const {
  return match::TopK::ScoreAll(query_vecs_[query_index], candidate_vecs_);
}

}  // namespace baselines
}  // namespace tdmatch
