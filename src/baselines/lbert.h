#ifndef TDMATCH_BASELINES_LBERT_H_
#define TDMATCH_BASELINES_LBERT_H_

#include <string>
#include <vector>

#include "baselines/linear_model.h"
#include "match/method.h"
#include "text/tokenizer.h"

namespace tdmatch {
namespace baselines {

/// \brief "L-BE*": the fine-tuned-BERT-large proxy for the multi-label
/// classification framing of the structured-text task (Table III).
///
/// One binary classifier per candidate concept (one-vs-rest) over hashed
/// bag-of-subword features of the document text. Like the real fine-tuned
/// model, it is strong for concepts with many training documents (the 40%
/// single-concept docs) and starved elsewhere — the pattern Table III shows.
class LBertProxy : public match::MatchMethod {
 public:
  struct Options {
    int feature_dim = 512;
    LogisticRegression::Options logreg{.lr = 0.3, .epochs = 60, .l2 = 1e-5,
                                       .seed = 5};
    uint64_t hash_seed = 0x1be;
    /// Negative documents sampled per concept per positive.
    size_t negatives_per_positive = 8;
    uint64_t seed = 41;
  };

  LBertProxy();  // default options
  explicit LBertProxy(Options options);

  util::Status Fit(const corpus::Scenario& scenario,
                   const std::vector<int32_t>& train_queries) override;
  std::vector<double> ScoreCandidates(size_t query_index) const override;
  std::string name() const override { return "L-BE*"; }
  bool supervised() const override { return true; }

 private:
  std::vector<double> Featurize(const std::string& text) const;

  Options options_;
  text::Tokenizer tokenizer_;
  std::vector<LogisticRegression> per_concept_;
  std::vector<bool> concept_trained_;
  std::vector<std::vector<double>> query_features_;
};

}  // namespace baselines
}  // namespace tdmatch

#endif  // TDMATCH_BASELINES_LBERT_H_
