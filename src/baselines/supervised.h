#ifndef TDMATCH_BASELINES_SUPERVISED_H_
#define TDMATCH_BASELINES_SUPERVISED_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/features.h"
#include "baselines/linear_model.h"
#include "match/method.h"

namespace tdmatch {
namespace baselines {

/// Shared options for the supervised pair-scoring proxies.
struct SupervisedOptions {
  /// Negatives sampled per positive pair at training time.
  size_t negatives_per_positive = 5;
  uint64_t seed = 31;
};

/// \brief "RANK*": pairwise learning-to-rank proxy (Shaar et al.) —
/// logistic RankNet loss over the shared lexical features.
class PairwiseRanker : public match::MatchMethod {
 public:
  explicit PairwiseRanker(SupervisedOptions options = {});

  util::Status Fit(const corpus::Scenario& scenario,
                   const std::vector<int32_t>& train_queries) override;
  std::vector<double> ScoreCandidates(size_t query_index) const override;
  std::string name() const override { return "RANK*"; }
  bool supervised() const override { return true; }

 private:
  SupervisedOptions options_;
  PairFeatures features_;
  LogisticRegression model_;
  size_t num_candidates_ = 0;
};

/// \brief "DITTO*": pointwise pair classifier proxy — an MLP over learned
/// hashed-interaction buckets plus shallow surface overlap (Ditto fine-tunes
/// BERT on the [COL]/[VAL]-serialized pair; token weighting is learned from
/// the limited annotations, not given).
class DittoProxy : public match::MatchMethod {
 public:
  explicit DittoProxy(SupervisedOptions options = {});

  util::Status Fit(const corpus::Scenario& scenario,
                   const std::vector<int32_t>& train_queries) override;
  std::vector<double> ScoreCandidates(size_t query_index) const override;
  std::string name() const override { return "DITTO*"; }
  bool supervised() const override { return true; }

 private:
  SupervisedOptions options_;
  PairFeatures features_;
  MlpClassifier model_;
  size_t num_candidates_ = 0;
};

/// \brief "DEEP-M*": DeepMatcher proxy — per-attribute similarity vector
/// aggregated by a logistic layer (DeepMatcher's attribute-summarization
/// design), so it only sees column-aligned signals.
class DeepMatcherProxy : public match::MatchMethod {
 public:
  explicit DeepMatcherProxy(SupervisedOptions options = {},
                            size_t max_columns = 13);

  util::Status Fit(const corpus::Scenario& scenario,
                   const std::vector<int32_t>& train_queries) override;
  std::vector<double> ScoreCandidates(size_t query_index) const override;
  std::string name() const override { return "DEEP-M*"; }
  bool supervised() const override { return true; }

 private:
  SupervisedOptions options_;
  size_t max_columns_;
  PairFeatures features_;
  LogisticRegression model_;
  size_t num_candidates_ = 0;
};

/// \brief "TAPAS*": table-QA proxy — column containment + learned hashed
/// interactions through an MLP. Mirrors TAPAS's bounded input: only a
/// prefix of the query text is visible to the column matcher (transformer
/// truncation), which is what hurts it on long reviews.
class TapasProxy : public match::MatchMethod {
 public:
  explicit TapasProxy(SupervisedOptions options = {}, size_t max_columns = 13,
                      size_t query_prefix_tokens = 32);

  util::Status Fit(const corpus::Scenario& scenario,
                   const std::vector<int32_t>& train_queries) override;
  std::vector<double> ScoreCandidates(size_t query_index) const override;
  std::string name() const override { return "TAPAS*"; }
  bool supervised() const override { return true; }

 private:
  SupervisedOptions options_;
  size_t max_columns_;
  size_t query_prefix_tokens_;
  PairFeatures features_;
  MlpClassifier model_;
  size_t num_candidates_ = 0;
};

}  // namespace baselines
}  // namespace tdmatch

#endif  // TDMATCH_BASELINES_SUPERVISED_H_
