#include "baselines/linear_model.h"

#include <cmath>

#include "util/logging.h"

namespace tdmatch {
namespace baselines {

namespace {
inline double Sigmoid(double x) {
  if (x > 30) return 1.0;
  if (x < -30) return 0.0;
  return 1.0 / (1.0 + std::exp(-x));
}
}  // namespace

LogisticRegression::LogisticRegression() : LogisticRegression(Options{}) {}

LogisticRegression::LogisticRegression(Options options) : options_(options) {}

util::Status LogisticRegression::Fit(const std::vector<Example>& examples) {
  if (examples.empty()) {
    return util::Status::InvalidArgument("no training examples");
  }
  const size_t dim = examples[0].features.size();
  for (const auto& e : examples) {
    if (e.features.size() != dim) {
      return util::Status::InvalidArgument("inconsistent feature dims");
    }
  }
  w_.assign(dim, 0.0);
  b_ = 0.0;
  util::Rng rng(options_.seed);
  std::vector<size_t> order(examples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    const double lr = options_.lr / (1.0 + 0.1 * epoch);
    for (size_t i : order) {
      const auto& e = examples[i];
      const double p = Sigmoid(Decision(e.features));
      const double g = e.label - p;
      for (size_t d = 0; d < dim; ++d) {
        w_[d] += lr * (g * e.features[d] - options_.l2 * w_[d]);
      }
      b_ += lr * g;
    }
  }
  return util::Status::OK();
}

double LogisticRegression::Decision(const std::vector<double>& f) const {
  TDM_DCHECK_EQ(f.size(), w_.size());
  double s = b_;
  for (size_t d = 0; d < f.size(); ++d) s += w_[d] * f[d];
  return s;
}

double LogisticRegression::Predict(const std::vector<double>& f) const {
  return Sigmoid(Decision(f));
}

util::Status LogisticRegression::FitPairwise(
    const std::vector<std::pair<std::vector<double>, std::vector<double>>>&
        pairs) {
  if (pairs.empty()) {
    return util::Status::InvalidArgument("no training pairs");
  }
  const size_t dim = pairs[0].first.size();
  w_.assign(dim, 0.0);
  b_ = 0.0;  // bias cancels in pairwise loss but kept for Predict parity
  util::Rng rng(options_.seed);
  std::vector<size_t> order(pairs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    const double lr = options_.lr / (1.0 + 0.1 * epoch);
    for (size_t i : order) {
      const auto& [pos, neg] = pairs[i];
      double diff = 0.0;
      for (size_t d = 0; d < dim; ++d) diff += w_[d] * (pos[d] - neg[d]);
      const double g = 1.0 - Sigmoid(diff);  // gradient of log(1+e^-diff)
      for (size_t d = 0; d < dim; ++d) {
        w_[d] += lr * (g * (pos[d] - neg[d]) - options_.l2 * w_[d]);
      }
    }
  }
  return util::Status::OK();
}

MlpClassifier::MlpClassifier() : MlpClassifier(Options{}) {}

MlpClassifier::MlpClassifier(Options options) : options_(options) {}

util::Status MlpClassifier::Fit(const std::vector<Example>& examples) {
  if (examples.empty()) {
    return util::Status::InvalidArgument("no training examples");
  }
  input_dim_ = static_cast<int>(examples[0].features.size());
  const int h = options_.hidden;
  util::Rng rng(options_.seed);
  w1_.resize(static_cast<size_t>(h * input_dim_));
  b1_.assign(static_cast<size_t>(h), 0.0);
  w2_.resize(static_cast<size_t>(h));
  for (auto& v : w1_) v = rng.Gaussian() * 0.3;
  for (auto& v : w2_) v = rng.Gaussian() * 0.3;
  b2_ = 0.0;

  std::vector<double> hidden(static_cast<size_t>(h));
  std::vector<double> grad_hidden(static_cast<size_t>(h));
  std::vector<size_t> order(examples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    const double lr = options_.lr / (1.0 + 0.05 * epoch);
    for (size_t i : order) {
      const auto& e = examples[i];
      // Forward.
      for (int j = 0; j < h; ++j) {
        double s = b1_[static_cast<size_t>(j)];
        const double* wrow = w1_.data() + static_cast<size_t>(j * input_dim_);
        for (int d = 0; d < input_dim_; ++d) {
          s += wrow[d] * e.features[static_cast<size_t>(d)];
        }
        hidden[static_cast<size_t>(j)] = s > 0 ? s : 0;  // ReLU
      }
      double out = b2_;
      for (int j = 0; j < h; ++j) {
        out += w2_[static_cast<size_t>(j)] * hidden[static_cast<size_t>(j)];
      }
      const double p = Sigmoid(out);
      const double g = e.label - p;
      // Backward.
      for (int j = 0; j < h; ++j) {
        grad_hidden[static_cast<size_t>(j)] =
            hidden[static_cast<size_t>(j)] > 0
                ? g * w2_[static_cast<size_t>(j)]
                : 0.0;
        w2_[static_cast<size_t>(j)] +=
            lr * (g * hidden[static_cast<size_t>(j)] -
                  options_.l2 * w2_[static_cast<size_t>(j)]);
      }
      b2_ += lr * g;
      for (int j = 0; j < h; ++j) {
        const double gh = grad_hidden[static_cast<size_t>(j)];
        if (gh == 0.0) continue;
        double* wrow = w1_.data() + static_cast<size_t>(j * input_dim_);
        for (int d = 0; d < input_dim_; ++d) {
          wrow[d] += lr * (gh * e.features[static_cast<size_t>(d)] -
                           options_.l2 * wrow[d]);
        }
        b1_[static_cast<size_t>(j)] += lr * gh;
      }
    }
  }
  return util::Status::OK();
}

double MlpClassifier::Predict(const std::vector<double>& features) const {
  TDM_DCHECK_EQ(static_cast<int>(features.size()), input_dim_);
  const int h = options_.hidden;
  double out = b2_;
  for (int j = 0; j < h; ++j) {
    double s = b1_[static_cast<size_t>(j)];
    const double* wrow = w1_.data() + static_cast<size_t>(j * input_dim_);
    for (int d = 0; d < input_dim_; ++d) s += wrow[d] * features[static_cast<size_t>(d)];
    if (s > 0) out += w2_[static_cast<size_t>(j)] * s;
  }
  return Sigmoid(out);
}

}  // namespace baselines
}  // namespace tdmatch
