#ifndef TDMATCH_BASELINES_LINEAR_MODEL_H_
#define TDMATCH_BASELINES_LINEAR_MODEL_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace tdmatch {
namespace baselines {

/// A labeled feature vector.
struct Example {
  std::vector<double> features;
  double label;  // 0 or 1
};

/// \brief Binary logistic regression trained with SGD; the workhorse of the
/// supervised baseline proxies.
class LogisticRegression {
 public:
  struct Options {
    double lr = 0.1;
    int epochs = 30;
    double l2 = 1e-4;
    uint64_t seed = 5;
  };

  LogisticRegression();  // default options
  explicit LogisticRegression(Options options);

  /// Trains on examples (all must share one feature dimensionality).
  util::Status Fit(const std::vector<Example>& examples);

  /// P(label = 1 | features).
  double Predict(const std::vector<double>& features) const;

  /// Raw decision value w·x + b.
  double Decision(const std::vector<double>& features) const;

  /// Pairwise ranking fit (RankNet-style logistic loss on score
  /// differences): each pair is (positive features, negative features).
  util::Status FitPairwise(
      const std::vector<std::pair<std::vector<double>,
                                  std::vector<double>>>& pairs);

  const std::vector<double>& weights() const { return w_; }
  double bias() const { return b_; }

 private:
  Options options_;
  std::vector<double> w_;
  double b_ = 0;
};

/// \brief One-hidden-layer MLP (ReLU) binary classifier — the "deep"
/// supervised proxies (Ditto*, TAPAS*) use this on top of their features.
class MlpClassifier {
 public:
  struct Options {
    int hidden = 16;
    double lr = 0.05;
    int epochs = 40;
    double l2 = 1e-5;
    uint64_t seed = 6;
  };

  MlpClassifier();  // default options
  explicit MlpClassifier(Options options);

  util::Status Fit(const std::vector<Example>& examples);
  double Predict(const std::vector<double>& features) const;

 private:
  Options options_;
  int input_dim_ = 0;
  std::vector<double> w1_;  // hidden x input
  std::vector<double> b1_;  // hidden
  std::vector<double> w2_;  // hidden
  double b2_ = 0;
};

}  // namespace baselines
}  // namespace tdmatch

#endif  // TDMATCH_BASELINES_LINEAR_MODEL_H_
