#include "baselines/embedding_baselines.h"

#include "embed/embedding_table.h"
#include "match/top_k.h"

namespace tdmatch {
namespace baselines {

std::string SerializeDoc(const corpus::Corpus& corpus, size_t index) {
  if (corpus.type() == corpus::CorpusType::kTable) {
    return corpus.table()->SerializeTuple(index);
  }
  return corpus.DocText(index);
}

namespace {

/// Tokenizes all documents of both corpora into a shared vocabulary.
/// Returns per-document id sequences: first all queries, then candidates.
std::vector<std::vector<int32_t>> TokenizeAll(
    const corpus::Scenario& scenario, text::Vocabulary* vocab) {
  text::Preprocessor pp(text::PreprocessOptions{
      .remove_stopwords = true, .stem = true, .max_ngram = 1});
  std::vector<std::vector<int32_t>> docs;
  auto add = [&](const corpus::Corpus& c) {
    for (size_t i = 0; i < c.NumDocs(); ++i) {
      std::vector<int32_t> ids;
      for (const auto& tok : pp.Tokens(SerializeDoc(c, i))) {
        ids.push_back(vocab->Add(tok));
      }
      docs.push_back(std::move(ids));
    }
  };
  add(scenario.first);
  add(scenario.second);
  return docs;
}

}  // namespace

Word2VecBaseline::Word2VecBaseline(embed::Word2VecOptions options)
    : options_(options) {}

util::Status Word2VecBaseline::Fit(
    const corpus::Scenario& scenario,
    const std::vector<int32_t>& train_queries) {
  (void)train_queries;  // unsupervised
  text::Vocabulary vocab;
  auto docs = TokenizeAll(scenario, &vocab);
  if (vocab.size() == 0) {
    return util::Status::InvalidArgument("empty corpora");
  }
  embed::Word2Vec w2v(options_);
  TDM_RETURN_NOT_OK(w2v.Train(docs, vocab.size()));

  auto doc_vec = [&](const std::vector<int32_t>& ids) {
    std::vector<const std::vector<float>*> token_vecs;
    std::vector<std::vector<float>> storage;
    storage.reserve(ids.size());
    for (int32_t id : ids) storage.push_back(w2v.VectorCopy(id));
    for (const auto& v : storage) token_vecs.push_back(&v);
    return embed::EmbeddingTable::Mean(token_vecs, w2v.dim());
  };

  const size_t nq = scenario.first.NumDocs();
  query_vecs_.clear();
  candidate_vecs_.clear();
  for (size_t i = 0; i < nq; ++i) query_vecs_.push_back(doc_vec(docs[i]));
  for (size_t i = nq; i < docs.size(); ++i) {
    candidate_vecs_.push_back(doc_vec(docs[i]));
  }
  return util::Status::OK();
}

std::vector<double> Word2VecBaseline::ScoreCandidates(
    size_t query_index) const {
  return match::TopK::ScoreAll(query_vecs_[query_index], candidate_vecs_);
}

Doc2VecBaseline::Doc2VecBaseline(embed::Doc2VecOptions options)
    : options_(options) {}

util::Status Doc2VecBaseline::Fit(const corpus::Scenario& scenario,
                                  const std::vector<int32_t>& train_queries) {
  (void)train_queries;  // unsupervised
  text::Vocabulary vocab;
  auto docs = TokenizeAll(scenario, &vocab);
  if (vocab.size() == 0) {
    return util::Status::InvalidArgument("empty corpora");
  }
  embed::Doc2Vec d2v(options_);
  TDM_RETURN_NOT_OK(d2v.Train(docs, vocab.size()));

  const size_t nq = scenario.first.NumDocs();
  query_vecs_.clear();
  candidate_vecs_.clear();
  for (size_t i = 0; i < nq; ++i) query_vecs_.push_back(d2v.DocVector(i));
  for (size_t i = nq; i < docs.size(); ++i) {
    candidate_vecs_.push_back(d2v.DocVector(i));
  }
  return util::Status::OK();
}

std::vector<double> Doc2VecBaseline::ScoreCandidates(
    size_t query_index) const {
  return match::TopK::ScoreAll(query_vecs_[query_index], candidate_vecs_);
}

}  // namespace baselines
}  // namespace tdmatch
