#include "eval/metrics.h"

#include <algorithm>
#include <unordered_set>

#include "util/logging.h"

namespace tdmatch {
namespace eval {

namespace {
std::unordered_set<int32_t> ToSet(const GoldSet& g) {
  return std::unordered_set<int32_t>(g.begin(), g.end());
}
}  // namespace

double RankingMetrics::MRR(const std::vector<Ranking>& rankings,
                           const std::vector<GoldSet>& gold) {
  TDM_CHECK_EQ(rankings.size(), gold.size());
  double sum = 0.0;
  size_t n = 0;
  for (size_t q = 0; q < rankings.size(); ++q) {
    if (gold[q].empty()) continue;
    ++n;
    auto gs = ToSet(gold[q]);
    for (size_t r = 0; r < rankings[q].size(); ++r) {
      if (gs.count(rankings[q][r]) > 0) {
        sum += 1.0 / static_cast<double>(r + 1);
        break;
      }
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double RankingMetrics::AveragePrecisionAtK(const Ranking& ranking,
                                           const GoldSet& gold, size_t k) {
  auto gs = ToSet(gold);
  if (gs.empty()) return 0.0;
  double sum = 0.0;
  size_t hits = 0;
  const size_t upto = std::min(k, ranking.size());
  for (size_t r = 0; r < upto; ++r) {
    if (gs.count(ranking[r]) > 0) {
      ++hits;
      sum += static_cast<double>(hits) / static_cast<double>(r + 1);
    }
  }
  const size_t denom = std::min(gs.size(), k);
  return denom == 0 ? 0.0 : sum / static_cast<double>(denom);
}

double RankingMetrics::MAPAtK(const std::vector<Ranking>& rankings,
                              const std::vector<GoldSet>& gold, size_t k) {
  TDM_CHECK_EQ(rankings.size(), gold.size());
  double sum = 0.0;
  size_t n = 0;
  for (size_t q = 0; q < rankings.size(); ++q) {
    if (gold[q].empty()) continue;
    ++n;
    sum += AveragePrecisionAtK(rankings[q], gold[q], k);
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double RankingMetrics::HasPositiveAtK(const std::vector<Ranking>& rankings,
                                      const std::vector<GoldSet>& gold,
                                      size_t k) {
  TDM_CHECK_EQ(rankings.size(), gold.size());
  size_t hits = 0;
  size_t n = 0;
  for (size_t q = 0; q < rankings.size(); ++q) {
    if (gold[q].empty()) continue;
    ++n;
    auto gs = ToSet(gold[q]);
    const size_t upto = std::min(k, rankings[q].size());
    for (size_t r = 0; r < upto; ++r) {
      if (gs.count(rankings[q][r]) > 0) {
        ++hits;
        break;
      }
    }
  }
  return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
}

double F1(double precision, double recall) {
  if (precision + recall == 0.0) return 0.0;
  return 2.0 * precision * recall / (precision + recall);
}

PRF ExactSetScores(const std::vector<Ranking>& rankings,
                   const std::vector<GoldSet>& gold, size_t k) {
  TDM_CHECK_EQ(rankings.size(), gold.size());
  double psum = 0.0, rsum = 0.0;
  size_t n = 0;
  for (size_t q = 0; q < rankings.size(); ++q) {
    if (gold[q].empty()) continue;
    ++n;
    auto gs = ToSet(gold[q]);
    const size_t upto = std::min(k, rankings[q].size());
    size_t correct = 0;
    for (size_t r = 0; r < upto; ++r) {
      if (gs.count(rankings[q][r]) > 0) ++correct;
    }
    if (upto > 0) psum += static_cast<double>(correct) / static_cast<double>(upto);
    rsum += static_cast<double>(correct) / static_cast<double>(gs.size());
  }
  PRF out;
  if (n > 0) {
    out.precision = psum / static_cast<double>(n);
    out.recall = rsum / static_cast<double>(n);
    out.f1 = F1(out.precision, out.recall);
  }
  return out;
}

}  // namespace eval
}  // namespace tdmatch
