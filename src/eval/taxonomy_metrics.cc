#include "eval/taxonomy_metrics.h"

#include <algorithm>

#include "util/logging.h"

namespace tdmatch {
namespace eval {

PRF TaxonomyMetrics::ExactScores(const corpus::Taxonomy& tax,
                                 const std::vector<Ranking>& rankings,
                                 const std::vector<GoldSet>& gold, size_t k) {
  // With unique concept ids, path equality reduces to id equality; the
  // generic exact set scores apply. `tax` kept in the signature for parity
  // with NodeScores and future label-duplicated taxonomies.
  (void)tax;
  return ExactSetScores(rankings, gold, k);
}

PRF TaxonomyMetrics::NodeScores(const corpus::Taxonomy& tax,
                                const std::vector<Ranking>& rankings,
                                const std::vector<GoldSet>& gold, size_t k,
                                size_t strip_levels) {
  TDM_CHECK_EQ(rankings.size(), gold.size());
  double psum = 0.0, rsum = 0.0;
  size_t n = 0;
  for (size_t q = 0; q < rankings.size(); ++q) {
    if (gold[q].empty()) continue;
    ++n;
    const size_t upto = std::min(k, rankings[q].size());

    // Precision: every prediction scored against its best gold path.
    double p = 0.0;
    for (size_t r = 0; r < upto; ++r) {
      double best = 0.0;
      for (int32_t g : gold[q]) {
        best = std::max(best, corpus::Taxonomy::NodeScore(
                                  tax, rankings[q][r], g, strip_levels));
      }
      p += best;
    }
    if (upto > 0) psum += p / static_cast<double>(upto);

    // Recall: every gold concept scored against its best prediction.
    double rr = 0.0;
    for (int32_t g : gold[q]) {
      double best = 0.0;
      for (size_t r = 0; r < upto; ++r) {
        best = std::max(best, corpus::Taxonomy::NodeScore(
                                  tax, rankings[q][r], g, strip_levels));
      }
      rr += best;
    }
    rsum += rr / static_cast<double>(gold[q].size());
  }
  PRF out;
  if (n > 0) {
    out.precision = psum / static_cast<double>(n);
    out.recall = rsum / static_cast<double>(n);
    out.f1 = F1(out.precision, out.recall);
  }
  return out;
}

}  // namespace eval
}  // namespace tdmatch
