#include "eval/kfold.h"

#include <algorithm>

#include "util/logging.h"

namespace tdmatch {
namespace eval {

std::vector<Split> KFold::Folds(size_t n, size_t k, uint64_t seed) {
  TDM_CHECK_GE(k, 2u);
  std::vector<int32_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = static_cast<int32_t>(i);
  util::Rng rng(seed);
  rng.Shuffle(&idx);
  std::vector<Split> out(k);
  for (size_t i = 0; i < n; ++i) {
    const size_t fold = i % k;
    for (size_t f = 0; f < k; ++f) {
      if (f == fold) {
        out[f].test.push_back(idx[i]);
      } else {
        out[f].train.push_back(idx[i]);
      }
    }
  }
  return out;
}

Split KFold::HoldOut(size_t n, double train_fraction, uint64_t seed) {
  std::vector<int32_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = static_cast<int32_t>(i);
  util::Rng rng(seed);
  rng.Shuffle(&idx);
  const size_t ntrain = static_cast<size_t>(
      train_fraction * static_cast<double>(n));
  Split s;
  s.train.assign(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(
                                                std::min(ntrain, n)));
  s.test.assign(idx.begin() + static_cast<std::ptrdiff_t>(
                                  std::min(ntrain, n)),
                idx.end());
  return s;
}

}  // namespace eval
}  // namespace tdmatch
