#ifndef TDMATCH_EVAL_KFOLD_H_
#define TDMATCH_EVAL_KFOLD_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace tdmatch {
namespace eval {

/// One train/test split.
struct Split {
  std::vector<int32_t> train;
  std::vector<int32_t> test;
};

/// \brief Query splitting for the supervised baselines: the paper uses
/// 5-fold cross-validation and a 60% training fraction.
class KFold {
 public:
  /// k splits of [0, n); every index appears in exactly one test fold.
  static std::vector<Split> Folds(size_t n, size_t k, uint64_t seed);

  /// Single shuffled split with `train_fraction` of the indices in train.
  static Split HoldOut(size_t n, double train_fraction, uint64_t seed);
};

}  // namespace eval
}  // namespace tdmatch

#endif  // TDMATCH_EVAL_KFOLD_H_
