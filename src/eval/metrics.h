#ifndef TDMATCH_EVAL_METRICS_H_
#define TDMATCH_EVAL_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tdmatch {
namespace eval {

/// A ranking for one query: candidate indices, best first.
using Ranking = std::vector<int32_t>;
/// Gold matches for one query: candidate indices (unordered).
using GoldSet = std::vector<int32_t>;

/// \brief Ranking-quality measures of §V (Tables I, II, IV, V, VI).
///
/// All are macro-averages over queries. Queries with an empty gold set are
/// skipped (they cannot be scored).
class RankingMetrics {
 public:
  /// Mean Reciprocal Rank: average of 1/rank of the first correct answer.
  static double MRR(const std::vector<Ranking>& rankings,
                    const std::vector<GoldSet>& gold);

  /// Mean Average Precision truncated at rank k.
  static double MAPAtK(const std::vector<Ranking>& rankings,
                       const std::vector<GoldSet>& gold, size_t k);

  /// Fraction of queries with >= 1 true positive in the top k.
  static double HasPositiveAtK(const std::vector<Ranking>& rankings,
                               const std::vector<GoldSet>& gold, size_t k);

  /// Average precision for a single query (helper, exposed for tests).
  static double AveragePrecisionAtK(const Ranking& ranking,
                                    const GoldSet& gold, size_t k);
};

/// Precision / recall / F1 triple (Table III).
struct PRF {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Harmonic mean helper: F1 from precision and recall.
double F1(double precision, double recall);

/// \brief Exact set-based scores: predictions are the top-k candidates, a
/// prediction is correct iff it is in the gold set. Macro-averaged.
PRF ExactSetScores(const std::vector<Ranking>& rankings,
                   const std::vector<GoldSet>& gold, size_t k);

}  // namespace eval
}  // namespace tdmatch

#endif  // TDMATCH_EVAL_METRICS_H_
