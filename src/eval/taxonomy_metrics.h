#ifndef TDMATCH_EVAL_TAXONOMY_METRICS_H_
#define TDMATCH_EVAL_TAXONOMY_METRICS_H_

#include <vector>

#include "corpus/taxonomy.h"
#include "eval/metrics.h"

namespace tdmatch {
namespace eval {

/// \brief Taxonomy-path measures of Table III.
///
/// *Exact* scores treat a predicted concept as correct only when its
/// root-to-node path equals a gold path (with unique concept ids this is id
/// equality). *Node* scores soft-match paths with Eq. 1: intersection over
/// maximum of the two paths after stripping the two most general levels.
class TaxonomyMetrics {
 public:
  /// Exact P/R/F of the top-k predicted concepts vs gold concepts.
  static PRF ExactScores(const corpus::Taxonomy& tax,
                         const std::vector<Ranking>& rankings,
                         const std::vector<GoldSet>& gold, size_t k);

  /// Node-score P/R/F (Eq. 1): precision averages, over predictions, the
  /// best Node score against any gold path; recall averages, over gold
  /// concepts, the best Node score against any prediction.
  static PRF NodeScores(const corpus::Taxonomy& tax,
                        const std::vector<Ranking>& rankings,
                        const std::vector<GoldSet>& gold, size_t k,
                        size_t strip_levels = 2);
};

}  // namespace eval
}  // namespace tdmatch

#endif  // TDMATCH_EVAL_TAXONOMY_METRICS_H_
