#include "text/stopwords.h"

namespace tdmatch {
namespace text {

namespace {
// Frequent English function words (SMART-style list, trimmed to words that
// actually occur in the generated corpora).
const char* const kDefaultStopWords[] = {
    "a",       "about",   "above",  "after",   "again",   "against", "all",
    "am",      "an",      "and",    "any",     "are",     "as",      "at",
    "be",      "because", "been",   "before",  "being",   "below",   "between",
    "both",    "but",     "by",     "can",     "cannot",  "could",   "did",
    "do",      "does",    "doing",  "down",    "during",  "each",    "few",
    "for",     "from",    "further","had",     "has",     "have",    "having",
    "he",      "her",     "here",   "hers",    "herself", "him",     "himself",
    "his",     "how",     "i",      "if",      "in",      "into",    "is",
    "it",      "its",     "itself", "just",    "me",      "more",    "most",
    "my",      "myself",  "no",     "nor",     "not",     "now",     "of",
    "off",     "on",      "once",   "only",    "or",      "other",   "our",
    "ours",    "ourselves", "out",  "over",    "own",     "same",    "she",
    "should",  "so",      "some",   "such",    "than",    "that",    "the",
    "their",   "theirs",  "them",   "themselves", "then", "there",   "these",
    "they",    "this",    "those",  "through", "to",      "too",     "under",
    "until",   "up",      "very",   "was",     "we",      "were",    "what",
    "when",    "where",   "which",  "while",   "who",     "whom",    "why",
    "will",    "with",    "would",  "you",     "your",    "yours",   "yourself",
    "yourselves", "s",    "t",      "dont",    "didnt",   "isnt",    "arent",
};
}  // namespace

StopWords::StopWords() {
  for (const char* w : kDefaultStopWords) words_.insert(w);
}

bool StopWords::Contains(std::string_view token) const {
  return words_.count(std::string(token)) > 0;
}

void StopWords::Add(std::string token) { words_.insert(std::move(token)); }

std::vector<std::string> StopWords::Filter(
    const std::vector<std::string>& tokens) const {
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (const auto& t : tokens) {
    if (!Contains(t)) out.push_back(t);
  }
  return out;
}

}  // namespace text
}  // namespace tdmatch
