#ifndef TDMATCH_TEXT_TFIDF_H_
#define TDMATCH_TEXT_TFIDF_H_

#include <string>
#include <unordered_map>
#include <vector>

namespace tdmatch {
namespace text {

/// \brief TF-IDF statistics over a collection of tokenized documents.
///
/// Two uses in the reproduction: the TF-IDF *filtering* baseline of Fig. 9
/// (keep the k highest-scoring tokens per document) and feature generation
/// for the supervised baselines (RANK*, Ditto proxy).
class TfIdf {
 public:
  /// Builds document frequencies from a corpus of tokenized documents.
  void Fit(const std::vector<std::vector<std::string>>& docs);

  /// Number of fitted documents.
  size_t num_docs() const { return num_docs_; }

  /// Smoothed inverse document frequency: ln((1+N)/(1+df)) + 1.
  double Idf(const std::string& token) const;

  /// TF-IDF scores (tf = raw count) for one document's tokens.
  std::unordered_map<std::string, double> Score(
      const std::vector<std::string>& doc) const;

  /// Keeps the k tokens with highest TF-IDF score (order preserved,
  /// duplicates of kept tokens preserved) — the Fig. 9 baseline filter.
  std::vector<std::string> TopK(const std::vector<std::string>& doc,
                                size_t k) const;

  /// Sparse TF-IDF vector keyed by token, L2-normalized; for cosine features.
  std::unordered_map<std::string, double> Vectorize(
      const std::vector<std::string>& doc) const;

  /// Cosine similarity between two sparse vectors from Vectorize().
  static double CosineSparse(
      const std::unordered_map<std::string, double>& a,
      const std::unordered_map<std::string, double>& b);

 private:
  std::unordered_map<std::string, uint64_t> df_;
  size_t num_docs_ = 0;
};

}  // namespace text
}  // namespace tdmatch

#endif  // TDMATCH_TEXT_TFIDF_H_
