#include "text/tfidf.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace tdmatch {
namespace text {

void TfIdf::Fit(const std::vector<std::vector<std::string>>& docs) {
  df_.clear();
  num_docs_ = docs.size();
  for (const auto& doc : docs) {
    std::unordered_set<std::string> seen(doc.begin(), doc.end());
    for (const auto& t : seen) ++df_[t];
  }
}

double TfIdf::Idf(const std::string& token) const {
  auto it = df_.find(token);
  const double df = it == df_.end() ? 0.0 : static_cast<double>(it->second);
  return std::log((1.0 + static_cast<double>(num_docs_)) / (1.0 + df)) + 1.0;
}

std::unordered_map<std::string, double> TfIdf::Score(
    const std::vector<std::string>& doc) const {
  std::unordered_map<std::string, double> tf;
  for (const auto& t : doc) tf[t] += 1.0;
  for (auto& [tok, v] : tf) v *= Idf(tok);
  return tf;
}

std::vector<std::string> TfIdf::TopK(const std::vector<std::string>& doc,
                                     size_t k) const {
  auto scores = Score(doc);
  std::vector<std::pair<std::string, double>> ranked(scores.begin(),
                                                     scores.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;  // deterministic tie-break
  });
  if (ranked.size() > k) ranked.resize(k);
  std::unordered_set<std::string> keep;
  for (const auto& [tok, s] : ranked) keep.insert(tok);
  std::vector<std::string> out;
  for (const auto& t : doc) {
    if (keep.count(t) > 0) out.push_back(t);
  }
  return out;
}

std::unordered_map<std::string, double> TfIdf::Vectorize(
    const std::vector<std::string>& doc) const {
  auto vec = Score(doc);
  double norm = 0.0;
  for (const auto& [tok, v] : vec) norm += v * v;
  norm = std::sqrt(norm);
  if (norm > 0.0) {
    for (auto& [tok, v] : vec) v /= norm;
  }
  return vec;
}

double TfIdf::CosineSparse(const std::unordered_map<std::string, double>& a,
                           const std::unordered_map<std::string, double>& b) {
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& big = a.size() <= b.size() ? b : a;
  double dot = 0.0;
  for (const auto& [tok, v] : small) {
    auto it = big.find(tok);
    if (it != big.end()) dot += v * it->second;
  }
  return dot;
}

}  // namespace text
}  // namespace tdmatch
