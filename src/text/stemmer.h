#ifndef TDMATCH_TEXT_STEMMER_H_
#define TDMATCH_TEXT_STEMMER_H_

#include <string>
#include <string_view>
#include <vector>

namespace tdmatch {
namespace text {

/// \brief Porter stemmer (Porter, 1980), full five-step algorithm.
///
/// Stemming is the first of the paper's node-merging techniques (§II-C):
/// it merges inflected forms ("planning" / "plan") into a single data node.
/// Numeric tokens and tokens shorter than three characters pass through
/// unchanged.
class PorterStemmer {
 public:
  /// Stems a single lower-case token.
  static std::string Stem(std::string_view word);

  /// Stems every token in a sequence.
  static std::vector<std::string> StemAll(
      const std::vector<std::string>& tokens);
};

}  // namespace text
}  // namespace tdmatch

#endif  // TDMATCH_TEXT_STEMMER_H_
