#ifndef TDMATCH_TEXT_PREPROCESS_H_
#define TDMATCH_TEXT_PREPROCESS_H_

#include <string>
#include <string_view>
#include <vector>

#include "text/ngram.h"
#include "text/stemmer.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace tdmatch {
namespace text {

/// Options for the full pre-processing pipeline of §II.
struct PreprocessOptions {
  TokenizerOptions tokenizer;
  bool remove_stopwords = true;
  bool stem = true;
  /// Maximum n-gram size for terms (§II-D; paper default 3).
  size_t max_ngram = 3;
};

/// \brief The paper's pre-processing pipeline: tokenize → stop-word
/// removal → stemming → n-gram term generation.
///
/// "Terms" are the processed values that become data nodes in the graph; a
/// term can span multiple tokens ("the sixth sense" → "sixth sens",
/// "sixth", "sens", ...).
class Preprocessor {
 public:
  explicit Preprocessor(PreprocessOptions options = {});

  /// Base tokens after tokenization, stop-word removal and stemming
  /// (no n-grams). This is the unit sequence used for window features.
  std::vector<std::string> Tokens(std::string_view input) const;

  /// Unique 1..max_ngram terms of `input` — the data-node labels.
  std::vector<std::string> Terms(std::string_view input) const;

  /// Terms from already-computed base tokens.
  std::vector<std::string> TermsFromTokens(
      const std::vector<std::string>& tokens) const;

  const PreprocessOptions& options() const { return options_; }

 private:
  PreprocessOptions options_;
  Tokenizer tokenizer_;
  StopWords stopwords_;
  NGramGenerator ngrams_;
};

}  // namespace text
}  // namespace tdmatch

#endif  // TDMATCH_TEXT_PREPROCESS_H_
