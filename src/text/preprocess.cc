#include "text/preprocess.h"

namespace tdmatch {
namespace text {

Preprocessor::Preprocessor(PreprocessOptions options)
    : options_(options),
      tokenizer_(options.tokenizer),
      ngrams_(options.max_ngram) {}

std::vector<std::string> Preprocessor::Tokens(std::string_view input) const {
  std::vector<std::string> toks = tokenizer_.Tokenize(input);
  if (options_.remove_stopwords) toks = stopwords_.Filter(toks);
  if (options_.stem) toks = PorterStemmer::StemAll(toks);
  return toks;
}

std::vector<std::string> Preprocessor::Terms(std::string_view input) const {
  return TermsFromTokens(Tokens(input));
}

std::vector<std::string> Preprocessor::TermsFromTokens(
    const std::vector<std::string>& tokens) const {
  return ngrams_.GenerateUnique(tokens);
}

}  // namespace text
}  // namespace tdmatch
