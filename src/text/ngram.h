#ifndef TDMATCH_TEXT_NGRAM_H_
#define TDMATCH_TEXT_NGRAM_H_

#include <string>
#include <vector>

namespace tdmatch {
namespace text {

/// \brief Word n-gram ("term") generation (§II-D).
///
/// The paper represents "The Sixth Sense" with all 1..n-gram terms (for
/// n = 3: five data nodes) so that partial mentions in the other corpus
/// ("Willis" vs "B. Willis") can still connect metadata nodes. The default
/// n = 3 was profiled on Wikipedia titles (99% are <= 3 tokens).
class NGramGenerator {
 public:
  /// \param max_n maximum n-gram size (>= 1).
  explicit NGramGenerator(size_t max_n = 3);

  /// All contiguous 1..max_n-grams of `tokens`, joined with a single space.
  std::vector<std::string> Generate(
      const std::vector<std::string>& tokens) const;

  /// Deduplicated version of Generate (a term appearing twice in a sentence
  /// still maps to one graph data node).
  std::vector<std::string> GenerateUnique(
      const std::vector<std::string>& tokens) const;

  size_t max_n() const { return max_n_; }

 private:
  size_t max_n_;
};

}  // namespace text
}  // namespace tdmatch

#endif  // TDMATCH_TEXT_NGRAM_H_
