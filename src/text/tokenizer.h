#ifndef TDMATCH_TEXT_TOKENIZER_H_
#define TDMATCH_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace tdmatch {
namespace text {

/// Tokenizer configuration knobs.
struct TokenizerOptions {
  /// Lower-case all tokens (paper pre-processing does).
  bool lowercase = true;
  /// Keep pure-numeric tokens (needed for bucketing, e.g. CoronaCheck).
  bool keep_numbers = true;
  /// Drop tokens shorter than this many characters (after lowering).
  size_t min_token_length = 1;
};

/// \brief Splits raw text into word tokens.
///
/// Splitting happens on whitespace and punctuation; apostrophes inside a
/// word ("don't") and decimal points / sign inside a number ("3.14", "-2")
/// are kept so that numbers survive as single tokens. ASCII-oriented, which
/// matches the datasets in the paper (English text).
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {});

  /// Tokenizes a text fragment.
  std::vector<std::string> Tokenize(std::string_view input) const;

  const TokenizerOptions& options() const { return options_; }

 private:
  TokenizerOptions options_;
};

}  // namespace text
}  // namespace tdmatch

#endif  // TDMATCH_TEXT_TOKENIZER_H_
