#include "text/tokenizer.h"

#include <cctype>

#include "util/string_util.h"

namespace tdmatch {
namespace text {

namespace {

inline bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0;
}

inline bool IsDigit(char c) {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

}  // namespace

Tokenizer::Tokenizer(TokenizerOptions options) : options_(options) {}

std::vector<std::string> Tokenizer::Tokenize(std::string_view input) const {
  std::vector<std::string> tokens;
  std::string cur;
  auto flush = [&]() {
    if (cur.empty()) return;
    std::string tok = options_.lowercase ? util::ToLower(cur) : cur;
    cur.clear();
    if (tok.size() < options_.min_token_length) return;
    if (!options_.keep_numbers && util::IsNumeric(tok)) return;
    tokens.push_back(std::move(tok));
  };

  for (size_t i = 0; i < input.size(); ++i) {
    char c = input[i];
    if (IsWordChar(c)) {
      cur.push_back(c);
    } else if (c == '\'' && !cur.empty() && i + 1 < input.size() &&
               IsWordChar(input[i + 1])) {
      // keep intra-word apostrophe: don't -> dont
      continue;
    } else if ((c == '.') && !cur.empty() && IsDigit(cur.back()) &&
               i + 1 < input.size() && IsDigit(input[i + 1])) {
      // decimal point inside a number
      cur.push_back(c);
    } else if (c == '-' && cur.empty() && i + 1 < input.size() &&
               IsDigit(input[i + 1])) {
      // leading sign of a number
      cur.push_back(c);
    } else {
      flush();
    }
  }
  flush();
  return tokens;
}

}  // namespace text
}  // namespace tdmatch
