#include "text/ngram.h"

#include <unordered_set>

#include "util/logging.h"

namespace tdmatch {
namespace text {

NGramGenerator::NGramGenerator(size_t max_n) : max_n_(max_n) {
  TDM_CHECK_GE(max_n_, 1u);
}

std::vector<std::string> NGramGenerator::Generate(
    const std::vector<std::string>& tokens) const {
  std::vector<std::string> out;
  const size_t n = tokens.size();
  for (size_t len = 1; len <= max_n_ && len <= n; ++len) {
    for (size_t i = 0; i + len <= n; ++i) {
      std::string term = tokens[i];
      for (size_t j = 1; j < len; ++j) {
        term.push_back(' ');
        term += tokens[i + j];
      }
      out.push_back(std::move(term));
    }
  }
  return out;
}

std::vector<std::string> NGramGenerator::GenerateUnique(
    const std::vector<std::string>& tokens) const {
  std::vector<std::string> all = Generate(tokens);
  std::unordered_set<std::string> seen;
  std::vector<std::string> out;
  out.reserve(all.size());
  for (auto& t : all) {
    if (seen.insert(t).second) out.push_back(std::move(t));
  }
  return out;
}

}  // namespace text
}  // namespace tdmatch
