#ifndef TDMATCH_TEXT_STOPWORDS_H_
#define TDMATCH_TEXT_STOPWORDS_H_

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace tdmatch {
namespace text {

/// \brief English stop-word list used by the paper's pre-processing step.
///
/// The default list is the classic SMART-derived set of frequent English
/// function words; callers can add domain-specific entries.
class StopWords {
 public:
  /// Builds the default English list.
  StopWords();

  /// True when `token` (already lower-cased) is a stop word.
  bool Contains(std::string_view token) const;

  /// Adds a custom stop word.
  void Add(std::string token);

  /// Removes all stop words from `tokens`, preserving order.
  std::vector<std::string> Filter(const std::vector<std::string>& tokens) const;

  size_t size() const { return words_.size(); }

 private:
  std::unordered_set<std::string> words_;
};

}  // namespace text
}  // namespace tdmatch

#endif  // TDMATCH_TEXT_STOPWORDS_H_
