#include "text/stemmer.h"

#include <cctype>

#include "util/string_util.h"

namespace tdmatch {
namespace text {

namespace {

// Implementation of the classic Porter (1980) algorithm. `b` holds the word
// being stemmed; `k` is the index of the last character.
class PorterImpl {
 public:
  explicit PorterImpl(std::string word) : b_(std::move(word)) {
    k_ = b_.empty() ? -1 : static_cast<int>(b_.size()) - 1;
  }

  std::string Run() {
    if (k_ <= 1) return b_;  // words of length <= 2 are left alone
    Step1ab();
    Step1c();
    Step2();
    Step3();
    Step4();
    Step5();
    return b_.substr(0, static_cast<size_t>(k_) + 1);
  }

 private:
  bool IsConsonant(int i) const {
    switch (b_[static_cast<size_t>(i)]) {
      case 'a': case 'e': case 'i': case 'o': case 'u':
        return false;
      case 'y':
        return i == 0 ? true : !IsConsonant(i - 1);
      default:
        return true;
    }
  }

  // Measure of the word between 0 and j: [C](VC)^m[V], returns m.
  int Measure(int j) const {
    int n = 0;
    int i = 0;
    for (;;) {
      if (i > j) return n;
      if (!IsConsonant(i)) break;
      ++i;
    }
    ++i;
    for (;;) {
      for (;;) {
        if (i > j) return n;
        if (IsConsonant(i)) break;
        ++i;
      }
      ++i;
      ++n;
      for (;;) {
        if (i > j) return n;
        if (!IsConsonant(i)) break;
        ++i;
      }
      ++i;
    }
  }

  bool VowelInStem(int j) const {
    for (int i = 0; i <= j; ++i) {
      if (!IsConsonant(i)) return true;
    }
    return false;
  }

  bool DoubleConsonant(int j) const {
    if (j < 1) return false;
    if (b_[static_cast<size_t>(j)] != b_[static_cast<size_t>(j - 1)])
      return false;
    return IsConsonant(j);
  }

  // cvc where second c is not w, x or y; e.g. hop(ping), tap(ped).
  bool Cvc(int i) const {
    if (i < 2 || !IsConsonant(i) || IsConsonant(i - 1) || !IsConsonant(i - 2))
      return false;
    char ch = b_[static_cast<size_t>(i)];
    return ch != 'w' && ch != 'x' && ch != 'y';
  }

  bool EndsWith(const char* s) {
    int len = static_cast<int>(std::char_traits<char>::length(s));
    if (len > k_ + 1) return false;
    if (b_.compare(static_cast<size_t>(k_ - len + 1), static_cast<size_t>(len),
                   s) != 0)
      return false;
    j_ = k_ - len;
    return true;
  }

  void SetTo(const char* s) {
    int len = static_cast<int>(std::char_traits<char>::length(s));
    b_.replace(static_cast<size_t>(j_ + 1), static_cast<size_t>(k_ - j_), s);
    k_ = j_ + len;
  }

  void ReplaceIfM0(const char* s) {
    if (Measure(j_) > 0) SetTo(s);
  }

  void Step1ab() {
    if (b_[static_cast<size_t>(k_)] == 's') {
      if (EndsWith("sses")) {
        k_ -= 2;
      } else if (EndsWith("ies")) {
        SetTo("i");
      } else if (b_[static_cast<size_t>(k_ - 1)] != 's') {
        --k_;
      }
    }
    if (EndsWith("eed")) {
      if (Measure(j_) > 0) --k_;
    } else if ((EndsWith("ed") || EndsWith("ing")) && VowelInStem(j_)) {
      k_ = j_;
      if (EndsWith("at")) {
        SetTo("ate");
      } else if (EndsWith("bl")) {
        SetTo("ble");
      } else if (EndsWith("iz")) {
        SetTo("ize");
      } else if (DoubleConsonant(k_)) {
        char ch = b_[static_cast<size_t>(k_)];
        if (ch != 'l' && ch != 's' && ch != 'z') --k_;
      } else if (Measure(k_) == 1 && Cvc(k_)) {
        j_ = k_;
        SetTo("e");
      }
    }
  }

  void Step1c() {
    if (EndsWith("y") && VowelInStem(j_)) {
      b_[static_cast<size_t>(k_)] = 'i';
    }
  }

  void Step2() {
    if (k_ < 1) return;
    switch (b_[static_cast<size_t>(k_ - 1)]) {
      case 'a':
        if (EndsWith("ational")) { ReplaceIfM0("ate"); break; }
        if (EndsWith("tional")) { ReplaceIfM0("tion"); break; }
        break;
      case 'c':
        if (EndsWith("enci")) { ReplaceIfM0("ence"); break; }
        if (EndsWith("anci")) { ReplaceIfM0("ance"); break; }
        break;
      case 'e':
        if (EndsWith("izer")) { ReplaceIfM0("ize"); break; }
        break;
      case 'l':
        if (EndsWith("bli")) { ReplaceIfM0("ble"); break; }
        if (EndsWith("alli")) { ReplaceIfM0("al"); break; }
        if (EndsWith("entli")) { ReplaceIfM0("ent"); break; }
        if (EndsWith("eli")) { ReplaceIfM0("e"); break; }
        if (EndsWith("ousli")) { ReplaceIfM0("ous"); break; }
        break;
      case 'o':
        if (EndsWith("ization")) { ReplaceIfM0("ize"); break; }
        if (EndsWith("ation")) { ReplaceIfM0("ate"); break; }
        if (EndsWith("ator")) { ReplaceIfM0("ate"); break; }
        break;
      case 's':
        if (EndsWith("alism")) { ReplaceIfM0("al"); break; }
        if (EndsWith("iveness")) { ReplaceIfM0("ive"); break; }
        if (EndsWith("fulness")) { ReplaceIfM0("ful"); break; }
        if (EndsWith("ousness")) { ReplaceIfM0("ous"); break; }
        break;
      case 't':
        if (EndsWith("aliti")) { ReplaceIfM0("al"); break; }
        if (EndsWith("iviti")) { ReplaceIfM0("ive"); break; }
        if (EndsWith("biliti")) { ReplaceIfM0("ble"); break; }
        break;
      case 'g':
        if (EndsWith("logi")) { ReplaceIfM0("log"); break; }
        break;
      default:
        break;
    }
  }

  void Step3() {
    switch (b_[static_cast<size_t>(k_)]) {
      case 'e':
        if (EndsWith("icate")) { ReplaceIfM0("ic"); break; }
        if (EndsWith("ative")) { ReplaceIfM0(""); break; }
        if (EndsWith("alize")) { ReplaceIfM0("al"); break; }
        break;
      case 'i':
        if (EndsWith("iciti")) { ReplaceIfM0("ic"); break; }
        break;
      case 'l':
        if (EndsWith("ical")) { ReplaceIfM0("ic"); break; }
        if (EndsWith("ful")) { ReplaceIfM0(""); break; }
        break;
      case 's':
        if (EndsWith("ness")) { ReplaceIfM0(""); break; }
        break;
      default:
        break;
    }
  }

  void Step4() {
    if (k_ < 1) return;
    switch (b_[static_cast<size_t>(k_ - 1)]) {
      case 'a':
        if (EndsWith("al")) break;
        return;
      case 'c':
        if (EndsWith("ance")) break;
        if (EndsWith("ence")) break;
        return;
      case 'e':
        if (EndsWith("er")) break;
        return;
      case 'i':
        if (EndsWith("ic")) break;
        return;
      case 'l':
        if (EndsWith("able")) break;
        if (EndsWith("ible")) break;
        return;
      case 'n':
        if (EndsWith("ant")) break;
        if (EndsWith("ement")) break;
        if (EndsWith("ment")) break;
        if (EndsWith("ent")) break;
        return;
      case 'o':
        if (EndsWith("ion") && j_ >= 0 &&
            (b_[static_cast<size_t>(j_)] == 's' ||
             b_[static_cast<size_t>(j_)] == 't'))
          break;
        if (EndsWith("ou")) break;
        return;
      case 's':
        if (EndsWith("ism")) break;
        return;
      case 't':
        if (EndsWith("ate")) break;
        if (EndsWith("iti")) break;
        return;
      case 'u':
        if (EndsWith("ous")) break;
        return;
      case 'v':
        if (EndsWith("ive")) break;
        return;
      case 'z':
        if (EndsWith("ize")) break;
        return;
      default:
        return;
    }
    if (Measure(j_) > 1) k_ = j_;
  }

  void Step5() {
    j_ = k_;
    if (b_[static_cast<size_t>(k_)] == 'e') {
      int m = Measure(k_ - 1 >= 0 ? k_ - 1 : 0);
      // Recompute measure of the stem without the trailing e.
      m = Measure(k_ - 1);
      if (m > 1 || (m == 1 && !Cvc(k_ - 1))) --k_;
    }
    if (b_[static_cast<size_t>(k_)] == 'l' && DoubleConsonant(k_) &&
        Measure(k_) > 1) {
      --k_;
    }
  }

  std::string b_;
  int k_ = -1;
  int j_ = 0;
};

bool IsPlainAlpha(std::string_view w) {
  for (char c : w) {
    if (std::isalpha(static_cast<unsigned char>(c)) == 0) return false;
  }
  return true;
}

}  // namespace

std::string PorterStemmer::Stem(std::string_view word) {
  if (word.size() <= 2 || !IsPlainAlpha(word)) return std::string(word);
  return PorterImpl(std::string(word)).Run();
}

std::vector<std::string> PorterStemmer::StemAll(
    const std::vector<std::string>& tokens) {
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (const auto& t : tokens) out.push_back(Stem(t));
  return out;
}

}  // namespace text
}  // namespace tdmatch
