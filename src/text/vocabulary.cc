#include "text/vocabulary.h"

#include "util/logging.h"

namespace tdmatch {
namespace text {

int32_t Vocabulary::Add(std::string_view token) { return AddCount(token, 1); }

int32_t Vocabulary::AddCount(std::string_view token, uint64_t count) {
  total_count_ += count;
  auto it = index_.find(std::string(token));
  if (it != index_.end()) {
    counts_[static_cast<size_t>(it->second)] += count;
    return it->second;
  }
  int32_t id = static_cast<int32_t>(tokens_.size());
  tokens_.emplace_back(token);
  counts_.push_back(count);
  index_.emplace(tokens_.back(), id);
  return id;
}

int32_t Vocabulary::Lookup(std::string_view token) const {
  auto it = index_.find(std::string(token));
  return it == index_.end() ? kInvalidTokenId : it->second;
}

const std::string& Vocabulary::TokenOf(int32_t id) const {
  TDM_DCHECK(id >= 0 && static_cast<size_t>(id) < tokens_.size());
  return tokens_[static_cast<size_t>(id)];
}

uint64_t Vocabulary::CountOf(int32_t id) const {
  TDM_DCHECK(id >= 0 && static_cast<size_t>(id) < counts_.size());
  return counts_[static_cast<size_t>(id)];
}

Vocabulary Vocabulary::Prune(uint64_t min_count,
                             std::vector<int32_t>* old_to_new) const {
  Vocabulary out;
  if (old_to_new != nullptr) {
    old_to_new->assign(tokens_.size(), kInvalidTokenId);
  }
  for (size_t i = 0; i < tokens_.size(); ++i) {
    if (counts_[i] >= min_count) {
      int32_t nid = out.AddCount(tokens_[i], counts_[i]);
      if (old_to_new != nullptr) (*old_to_new)[i] = nid;
    }
  }
  return out;
}

}  // namespace text
}  // namespace tdmatch
