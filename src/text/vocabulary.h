#ifndef TDMATCH_TEXT_VOCABULARY_H_
#define TDMATCH_TEXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace tdmatch {
namespace text {

/// Sentinel for "token not present".
inline constexpr int32_t kInvalidTokenId = -1;

/// \brief Bidirectional string <-> dense-id map with occurrence counts.
///
/// Used both by the graph (node registry) and the Word2Vec trainer
/// (vocabulary with frequency-based subsampling / negative-sampling table).
class Vocabulary {
 public:
  /// Adds one occurrence of `token`, interning it if new; returns its id.
  int32_t Add(std::string_view token);

  /// Adds `count` occurrences.
  int32_t AddCount(std::string_view token, uint64_t count);

  /// Returns the id of `token` or kInvalidTokenId.
  int32_t Lookup(std::string_view token) const;

  /// True when the token is interned.
  bool Contains(std::string_view token) const {
    return Lookup(token) != kInvalidTokenId;
  }

  /// The token string for an id (must be valid).
  const std::string& TokenOf(int32_t id) const;

  /// Occurrence count for an id (must be valid).
  uint64_t CountOf(int32_t id) const;

  /// Number of distinct tokens.
  size_t size() const { return tokens_.size(); }

  /// Total occurrences across all tokens.
  uint64_t total_count() const { return total_count_; }

  /// Returns a copy with tokens of count < min_count removed and ids
  /// re-densified. `old_to_new` (optional) receives the id remapping
  /// (kInvalidTokenId for dropped tokens).
  Vocabulary Prune(uint64_t min_count,
                   std::vector<int32_t>* old_to_new = nullptr) const;

 private:
  std::unordered_map<std::string, int32_t> index_;
  std::vector<std::string> tokens_;
  std::vector<uint64_t> counts_;
  uint64_t total_count_ = 0;
};

}  // namespace text
}  // namespace tdmatch

#endif  // TDMATCH_TEXT_VOCABULARY_H_
