#ifndef TDMATCH_DATAGEN_CLAIMS_H_
#define TDMATCH_DATAGEN_CLAIMS_H_

#include "datagen/generated.h"

namespace tdmatch {
namespace datagen {

/// Options for the fact-checking text-to-text scenarios (Tables IV & V).
struct ClaimsOptions {
  /// Verified claims (facts) — the candidate pool.
  size_t num_facts = 1200;
  /// Input claims (queries), each a paraphrase of one fact.
  size_t num_queries = 150;
  /// Topical clusters: facts within a topic reuse the same small pools of
  /// people and content words, so many verified claims are confusable and
  /// only the exact combination identifies the right one.
  size_t num_topics = 25;
  size_t people_per_topic = 3;
  size_t words_per_topic = 8;
  /// Paraphrase aggressiveness: probability of replacing a content word
  /// with its synonym / dropping a token. Politifact is configured harder
  /// than Snopes, matching the paper's relative difficulty.
  double synonym_swap_rate = 0.5;
  double token_drop_rate = 0.3;
  /// Prepend a chatty prefix ("people claim that ...").
  double filler_rate = 0.4;
  size_t num_synonym_pairs = 40;
  std::string name = "Snopes";
  uint64_t seed = 17;
};

/// \brief Generates a fact-checking scenario: a corpus of verified claims
/// and a corpus of check-worthy paraphrases; first corpus = input claims,
/// second = verified claims. Presets mirror the two datasets of the paper.
class ClaimsGenerator {
 public:
  static GeneratedScenario Generate(const ClaimsOptions& options = {});

  /// Snopes preset: 1k claims / 11k facts, milder paraphrasing.
  static ClaimsOptions SnopesPreset();

  /// Politifact preset: more facts, heavier paraphrasing (harder).
  static ClaimsOptions PolitifactPreset();
};

}  // namespace datagen
}  // namespace tdmatch

#endif  // TDMATCH_DATAGEN_CLAIMS_H_
