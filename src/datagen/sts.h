#ifndef TDMATCH_DATAGEN_STS_H_
#define TDMATCH_DATAGEN_STS_H_

#include "datagen/generated.h"

namespace tdmatch {
namespace datagen {

/// Options for the STS-like sentence-pair scenario (Table VI).
struct StsOptions {
  size_t num_pairs = 500;
  /// Ground-truth similarity threshold: a pair is a true match when its
  /// generated score >= threshold (paper reports k=2 and k=3).
  int threshold = 2;
  size_t num_synonym_pairs = 30;
  uint64_t seed = 23;
};

/// \brief Generates an STS-style scenario: sentence pairs with a similarity
/// score in 0..5 controlled by construction (5 = identical, 4 = synonym
/// swaps, 3 = partial rewrite, ..., 0 = unrelated). First corpus = left
/// sentences, second = right sentences; gold links a left sentence to its
/// partner when score >= threshold.
class StsGenerator {
 public:
  static GeneratedScenario Generate(const StsOptions& options = {});

  /// The generated score of each pair (index-aligned with the corpora),
  /// for tests and the Fig. 8 scaling sweep.
  static std::vector<int> PairScores(const StsOptions& options);
};

}  // namespace datagen
}  // namespace tdmatch

#endif  // TDMATCH_DATAGEN_STS_H_
