#ifndef TDMATCH_DATAGEN_CORONA_H_
#define TDMATCH_DATAGEN_CORONA_H_

#include "datagen/generated.h"

namespace tdmatch {
namespace datagen {

/// Options for the CoronaCheck-like text-to-data scenario (Table II).
struct CoronaOptions {
  size_t num_countries = 20;
  size_t num_months = 10;
  /// Reporting days per month: the table is *daily* (like the paper's 1.2k
  /// daily-cases tuples) while claims cite only the month, so the numeric
  /// value is what disambiguates among a month's rows.
  size_t days_per_month = 6;
  /// Template-generated claims ("Gen" block of Table II).
  size_t num_generated_claims = 240;
  /// Noisy user claims with typos ("Usr" block).
  size_t num_user_claims = 50;
  /// Probability a claim reports an approximate value (±8%), which only
  /// bucketed numeric nodes can bridge.
  double approx_value_rate = 0.75;
  /// Probability a user claim contains a typo in the country name.
  double typo_rate = 0.6;
  /// Generate the "Usr" variant instead of "Gen".
  bool user_variant = false;
  uint64_t seed = 11;
};

/// \brief Generates the CoronaCheck scenario: a numeric daily case table
/// (country × month × day) and claims to be matched to the supporting
/// rows. Claims cite country + month + an (often approximate) value, so
/// several rows tie on the lexical evidence and only the value — bucketed
/// per §II-C — picks the right one. Roughly a quarter of the data nodes are
/// numeric, matching the paper's characterization.
class CoronaGenerator {
 public:
  static GeneratedScenario Generate(const CoronaOptions& options = {});
};

}  // namespace datagen
}  // namespace tdmatch

#endif  // TDMATCH_DATAGEN_CORONA_H_
