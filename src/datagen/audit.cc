#include "datagen/audit.h"

#include <algorithm>
#include <unordered_map>

#include "datagen/generic_corpus.h"
#include "text/preprocess.h"
#include "util/string_util.h"

namespace tdmatch {
namespace datagen {

GeneratedScenario AuditGenerator::Generate(const AuditOptions& options) {
  util::Rng rng(options.seed);
  WordBank bank(options.seed);
  GeneratedScenario out;

  // The generic corpus is generated *before* the domain vocabulary is
  // created, so domain terms are OOV for the pre-trained lexicon (the
  // paper's "domain specific terms are not covered" effect).
  out.generic_corpus = GenericCorpusGenerator::Generate(
      bank, GenericCorpusOptions{.seed = options.seed ^ 0x9a9a});

  // Domain vocabulary: fresh fake words + generic words reused with a
  // domain meaning ("control", "risk").
  std::vector<std::string> domain_words;
  for (size_t i = 0; i < 70; ++i) {
    domain_words.push_back(util::ToLower(bank.FakeWord(&rng)));
  }
  const char* const reused[] = {"control", "risk",   "report", "policy",
                                "standard", "review", "process", "record"};
  for (const char* w : reused) domain_words.push_back(w);

  // Domain synonyms: recorded in the bank (⇒ KB) but not in the generic
  // corpus (already generated above).
  auto domain_syns =
      bank.MakeSynonymPairs(options.num_domain_synonyms, &rng);
  std::unordered_map<std::string, std::string> syn_of;
  for (const auto& [a, b] : domain_syns) syn_of[a] = b;
  // Some synonym heads become part of the concept vocabulary too.
  for (size_t i = 0; i < domain_syns.size() && i < 20; ++i) {
    domain_words.push_back(domain_syns[i].first);
  }

  // Taxonomy: num_roots trees grown to max_depth.
  corpus::Taxonomy tax;
  std::vector<corpus::ConceptId> by_depth[8];
  std::unordered_map<int32_t, std::string> acronym_of;
  auto make_label = [&](size_t words) {
    std::string label;
    for (size_t w = 0; w < words; ++w) {
      if (w > 0) label += " ";
      label += rng.Choice(domain_words);
    }
    return label;
  };
  for (size_t r = 0; r < options.num_roots; ++r) {
    corpus::ConceptId root = tax.AddConcept(make_label(1));
    by_depth[1].push_back(root);
  }
  while (tax.NumConcepts() < options.num_concepts) {
    // Pick a parent at a random depth < max_depth.
    size_t d =
        1 + static_cast<size_t>(rng.UniformInt(
                static_cast<uint64_t>(options.max_depth - 1)));
    while (by_depth[d].empty()) {
      d = 1 + static_cast<size_t>(rng.UniformInt(
                  static_cast<uint64_t>(options.max_depth - 1)));
    }
    corpus::ConceptId parent = rng.Choice(by_depth[d]);
    const size_t nwords = 1 + static_cast<size_t>(rng.UniformInt(3ULL));
    corpus::ConceptId id = tax.AddConcept(make_label(nwords), parent);
    by_depth[d + 1].push_back(id);
    // Multi-word concepts get a known acronym (PDCA case).
    if (nwords >= 3) {
      acronym_of[id] = bank.MakeAcronym(tax.label(id));
    }
  }

  // Documents built from 1..k concepts.
  std::vector<corpus::TextDoc> docs;
  std::vector<std::vector<int32_t>> gold;
  const size_t num_leafish = tax.NumConcepts();
  for (size_t di = 0; di < options.num_documents; ++di) {
    size_t k;
    const double roll = rng.Uniform();
    if (roll < options.one_concept_rate) {
      k = 1;
    } else if (roll < options.one_concept_rate + options.two_concept_rate) {
      k = 2;
    } else {
      k = 3 + static_cast<size_t>(rng.UniformInt(static_cast<uint64_t>(
                  options.max_concepts_per_doc - 2)));
    }
    std::vector<int32_t> concepts;
    while (concepts.size() < k) {
      int32_t c = static_cast<int32_t>(rng.UniformInt(num_leafish));
      if (std::find(concepts.begin(), concepts.end(), c) == concepts.end()) {
        concepts.push_back(c);
      }
    }
    std::vector<std::string> sentences;
    for (int32_t c : concepts) {
      // Mention the concept via label words, synonym, or acronym.
      std::string mention = tax.label(c);
      if (acronym_of.count(c) > 0 &&
          rng.Bernoulli(options.synonym_mention_rate)) {
        mention = acronym_of[c];
      } else if (rng.Bernoulli(options.synonym_mention_rate)) {
        // Replace each word that has a recorded synonym.
        std::vector<std::string> words = util::SplitWhitespace(mention);
        for (auto& w : words) {
          auto it = syn_of.find(w);
          if (it != syn_of.end()) w = it->second;
        }
        mention = util::Join(words, " ");
      }
      // Parent context words strengthen the hierarchical signal.
      std::string parent_word;
      if (tax.parent(c) != corpus::kNoConcept) {
        auto pwords = util::SplitWhitespace(tax.label(tax.parent(c)));
        parent_word = rng.Choice(pwords);
      } else {
        parent_word = bank.Noun(&rng);
      }
      sentences.push_back(util::StrFormat(
          "The %s of %s must be %s during the %s %s.",
          bank.Noun(&rng).c_str(), mention.c_str(), bank.Verb(&rng).c_str(),
          bank.Adjective(&rng).c_str(), parent_word.c_str()));
    }
    if (rng.Bernoulli(0.5)) {
      sentences.push_back(util::StrFormat(
          "Every %s shall %s the %s accordingly.", bank.Noun(&rng).c_str(),
          bank.Verb(&rng).c_str(), bank.Noun(&rng).c_str()));
    }
    docs.push_back(corpus::TextDoc{util::StrFormat("audit_doc_%zu", di),
                                   util::Join(sentences, " ")});
    gold.push_back(std::move(concepts));
  }

  // ConceptNet-like KB: domain synonyms, acronyms, and concept-word
  // relations; plus generic-word noise.
  text::Preprocessor pp;
  auto normalizer = [pp](const std::string& s) {
    return util::Join(pp.Tokens(s), " ");
  };
  out.kb = std::make_shared<kb::SyntheticKB>(normalizer);
  for (const auto& [a, b] : domain_syns) {
    out.kb->AddRelation(a, b, "synonym");
  }
  for (const auto& [cid, acro] : acronym_of) {
    out.kb->AddRelation(tax.label(cid), acro, "acronym");
    // Also relate the acronym to the label's individual words.
    for (const auto& w : util::SplitWhitespace(tax.label(cid))) {
      out.kb->AddRelation(acro, w, "relatedTo");
    }
  }
  for (size_t i = 0; i + 1 < domain_words.size(); i += 2) {
    out.kb->AddRelation(domain_words[i], domain_words[i + 1], "relatedTo");
  }
  for (size_t i = 0; i < 60; ++i) {
    out.kb->AddRelation(bank.Noun(&rng), bank.FakeWord(&rng), "relatedTo");
  }

  out.synonym_pairs = bank.SynonymPairs();
  out.scenario.name = "Audit";
  out.scenario.first = corpus::Corpus::FromTexts("audit_docs", std::move(docs));
  out.scenario.second = corpus::Corpus::FromTaxonomy("taxonomy", std::move(tax));
  out.scenario.gold = std::move(gold);
  return out;
}

}  // namespace datagen
}  // namespace tdmatch
