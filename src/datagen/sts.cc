#include "datagen/sts.h"

#include <unordered_map>

#include "datagen/generic_corpus.h"
#include "text/preprocess.h"
#include "util/string_util.h"

namespace tdmatch {
namespace datagen {

namespace {

/// Builds a base sentence from a small topical vocabulary, so unrelated
/// sentences of the same topic still overlap substantially (the STS-B
/// corpora are topically clustered captions/headlines).
std::vector<std::string> BaseSentence(const std::vector<std::string>& topic,
                                      WordBank* bank, util::Rng* rng) {
  std::vector<std::string> toks;
  const size_t len = 6 + static_cast<size_t>(rng->UniformInt(8ULL));
  for (size_t i = 0; i < len; ++i) {
    if (rng->Bernoulli(0.7)) {
      toks.push_back(rng->Choice(topic));
    } else {
      toks.push_back(bank->Verb(rng));
    }
  }
  return toks;
}

int ScoreForPair(util::Rng* rng) {
  // Roughly uniform over 0..5 with a slight bias to the middle, echoing the
  // STS-B distribution.
  return static_cast<int>(rng->UniformInt(6ULL));
}

}  // namespace

std::vector<int> StsGenerator::PairScores(const StsOptions& options) {
  util::Rng rng(options.seed);
  std::vector<int> scores(options.num_pairs);
  for (auto& s : scores) s = ScoreForPair(&rng);
  return scores;
}

GeneratedScenario StsGenerator::Generate(const StsOptions& options) {
  // PairScores re-derives the same sequence from the same seed: keep the
  // draw order identical (scores first, then the sentence material).
  std::vector<int> scores = PairScores(options);
  util::Rng rng(options.seed ^ 0xf00d);
  WordBank bank(options.seed);
  GeneratedScenario out;

  auto syn_pairs = bank.MakeSynonymPairs(options.num_synonym_pairs, &rng);
  std::unordered_map<std::string, std::string> syn_of;
  for (const auto& [a, b] : syn_pairs) {
    syn_of[a] = b;
    syn_of[b] = a;
  }

  // Topic vocabularies shared by many pairs.
  const size_t num_topics = std::max<size_t>(4, options.num_pairs / 40);
  std::vector<std::vector<std::string>> topics(num_topics);
  for (auto& topic : topics) {
    for (int w = 0; w < 8; ++w) {
      topic.push_back(rng.Bernoulli(0.5)
                          ? bank.Noun(&rng)
                          : syn_pairs[static_cast<size_t>(rng.UniformInt(
                                          syn_pairs.size()))]
                                .first);
    }
  }

  std::vector<corpus::TextDoc> left;
  std::vector<corpus::TextDoc> right;
  std::vector<std::vector<int32_t>> gold;
  for (size_t p = 0; p < options.num_pairs; ++p) {
    const auto& topic = topics[p % num_topics];
    std::vector<std::string> a = BaseSentence(topic, &bank, &rng);
    // Seed some synonym-swappable words in.
    for (size_t i = 0; i < a.size(); ++i) {
      if (rng.Bernoulli(0.25)) a[i] = syn_pairs[static_cast<size_t>(
          rng.UniformInt(syn_pairs.size()))].first;
    }
    std::vector<std::string> b;
    const int score = scores[p];
    switch (score) {
      case 5:
        b = a;  // identical
        break;
      case 4:
        b = a;  // synonym swaps only
        for (auto& t : b) {
          auto it = syn_of.find(t);
          if (it != syn_of.end() && rng.Bernoulli(0.6)) t = it->second;
        }
        break;
      case 3:
        b = a;  // partial rewrite: drop/replace ~25%
        for (auto& t : b) {
          if (rng.Bernoulli(0.25)) t = rng.Choice(topic);
        }
        break;
      case 2: {
        // Share ~half the tokens.
        for (size_t i = 0; i < a.size(); ++i) {
          b.push_back(rng.Bernoulli(0.5) ? a[i] : rng.Choice(topic));
        }
        break;
      }
      case 1: {
        // Same topic, little direct sharing.
        b = BaseSentence(topic, &bank, &rng);
        b[0] = a[0];
        break;
      }
      default:
        b = BaseSentence(topic, &bank, &rng);  // unrelated, same topic
        break;
    }
    left.push_back(
        corpus::TextDoc{util::StrFormat("sts_l_%zu", p), util::Join(a, " ")});
    right.push_back(
        corpus::TextDoc{util::StrFormat("sts_r_%zu", p), util::Join(b, " ")});
    if (score >= options.threshold) {
      gold.push_back({static_cast<int32_t>(p)});
    } else {
      gold.push_back({});  // not a match at this threshold: skipped by eval
    }
  }

  text::Preprocessor pp;
  auto normalizer = [pp](const std::string& s) {
    return util::Join(pp.Tokens(s), " ");
  };
  out.kb = std::make_shared<kb::SyntheticKB>(normalizer);
  for (const auto& [a, b] : syn_pairs) out.kb->AddRelation(a, b, "synonym");
  for (size_t i = 0; i < 40; ++i) {
    out.kb->AddRelation(bank.Noun(&rng), bank.Noun(&rng), "relatedTo");
  }

  out.synonym_pairs = bank.SynonymPairs();
  out.generic_corpus = GenericCorpusGenerator::Generate(
      bank, GenericCorpusOptions{.seed = options.seed ^ 0xcdcd});

  out.scenario.name = util::StrFormat("STS-k%d", options.threshold);
  out.scenario.first = corpus::Corpus::FromTexts("sts_left", std::move(left));
  out.scenario.second =
      corpus::Corpus::FromTexts("sts_right", std::move(right));
  out.scenario.gold = std::move(gold);
  return out;
}

}  // namespace datagen
}  // namespace tdmatch
