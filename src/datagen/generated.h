#ifndef TDMATCH_DATAGEN_GENERATED_H_
#define TDMATCH_DATAGEN_GENERATED_H_

#include <memory>
#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "datagen/word_bank.h"
#include "kb/synthetic_kb.h"

namespace tdmatch {
namespace datagen {

/// \brief Everything a generator produces for one scenario: the matching
/// task, the external resource for expansion (Alg. 2), the synonym pairs
/// for γ calibration, and the generic corpus the "pre-trained" lexicon is
/// trained on.
struct GeneratedScenario {
  corpus::Scenario scenario;
  std::shared_ptr<kb::SyntheticKB> kb;
  std::vector<std::pair<std::string, std::string>> synonym_pairs;
  std::vector<std::vector<std::string>> generic_corpus;
};

}  // namespace datagen
}  // namespace tdmatch

#endif  // TDMATCH_DATAGEN_GENERATED_H_
