#include "datagen/word_bank.h"

#include <cctype>

#include "util/logging.h"
#include "util/string_util.h"

namespace tdmatch {
namespace datagen {

namespace {

const char* const kNouns[] = {
    "story",    "scene",    "character", "plot",     "screen",  "moment",
    "ending",   "action",   "dialogue",  "camera",   "music",   "script",
    "audience", "director", "performance", "role",   "style",   "journey",
    "tension",  "mystery",  "emotion",   "world",    "family",  "friend",
    "city",     "night",    "war",       "love",     "crime",   "hero",
    "villain",  "dream",    "memory",    "truth",    "secret",  "battle",
    "market",   "process",  "report",    "control",  "risk",    "policy",
    "standard", "review",   "system",    "project",  "budget",  "record",
};

const char* const kVerbs[] = {
    "watch",  "enjoy",   "deliver", "capture", "follow",  "reveal",
    "build",  "create",  "explore", "present", "perform", "direct",
    "write",  "produce", "manage",  "verify",  "assess",  "measure",
    "report", "plan",    "check",   "improve", "define",  "document",
};

const char* const kAdjectives[] = {
    "great",    "brilliant", "stunning", "boring",   "slow",     "sharp",
    "dark",     "bright",    "classic",  "modern",   "strange",  "powerful",
    "quiet",    "loud",      "gentle",   "fierce",   "elegant",  "awkward",
    "annual",   "internal",  "external", "critical", "formal",   "monthly",
};

const char* const kGenres[] = {
    "drama", "comedy", "thriller", "horror", "romance",
    "action", "western", "fantasy", "mystery", "documentary",
};

// Colloquial genre variants a reviewer would actually write.
const std::pair<const char*, const char*> kGenreSynonyms[] = {
    {"drama", "dramatic"},   {"comedy", "funny"},
    {"thriller", "suspense"}, {"horror", "scary"},
    {"romance", "romantic"}, {"action", "explosive"},
    {"western", "frontier"}, {"fantasy", "magical"},
    {"mystery", "puzzling"}, {"documentary", "factual"},
};

const char* const kCountries[] = {
    "United States", "China",   "India",    "Brazil",  "Russia",
    "Japan",         "Germany", "France",   "Italy",   "Spain",
    "Canada",        "Mexico",  "Peru",     "Chile",   "Egypt",
    "Kenya",         "Nigeria", "Turkey",   "Iran",    "Poland",
    "Sweden",        "Norway",  "Greece",   "Portugal", "Austria",
    "Belgium",       "Ireland", "Denmark",  "Finland", "Argentina",
};

const char* const kMonths[] = {
    "January", "February", "March",     "April",   "May",      "June",
    "July",    "August",   "September", "October", "November", "December",
};

const char* const kSyllables[] = {
    "ka", "ren", "mo", "vi", "ta", "shy", "lan", "dor", "bel", "mar",
    "tin", "lo", "ne", "ras", "gu", "fel", "san", "dra", "pol", "ver",
    "zan", "qui", "ber", "nal", "sto", "rem", "cal", "dus", "hem", "jor",
};

}  // namespace

WordBank::WordBank(uint64_t seed) {
  (void)seed;
  for (const char* w : kNouns) nouns_.push_back(w);
  for (const char* w : kVerbs) verbs_.push_back(w);
  for (const char* w : kAdjectives) adjectives_.push_back(w);
  for (const char* w : kGenres) genres_.push_back(w);
  for (const auto& [g, s] : kGenreSynonyms) {
    genre_synonyms_[g] = s;
    synonym_pairs_.emplace_back(g, s);
  }
  for (const char* w : kCountries) countries_.push_back(w);
  for (const char* w : kMonths) months_.push_back(w);
  for (const char* w : kSyllables) syllables_.push_back(w);
}

std::string WordBank::FakeWord(util::Rng* rng) const {
  const size_t n = 2 + static_cast<size_t>(rng->UniformInt(2ULL));
  std::string w;
  for (size_t i = 0; i < n; ++i) w += rng->Choice(syllables_);
  w[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(w[0])));
  return w;
}

std::string WordBank::PersonName(util::Rng* rng) const {
  return FakeWord(rng) + " " + FakeWord(rng);
}

std::string WordBank::AbbreviateName(const std::string& full_name) {
  auto parts = util::SplitWhitespace(full_name);
  if (parts.size() < 2) return full_name;
  std::string out;
  out += parts[0][0];
  out += ".";
  for (size_t i = 1; i < parts.size(); ++i) {
    out += " ";
    out += parts[i];
  }
  return out;
}

std::string WordBank::Title(util::Rng* rng, size_t max_words,
                            double fake_word_rate) const {
  const size_t n = 1 + static_cast<size_t>(rng->UniformInt(max_words));
  std::string t;
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) t += " ";
    // Mix fake words and capitalized nouns for natural-looking titles.
    if (rng->Bernoulli(fake_word_rate)) {
      t += FakeWord(rng);
    } else {
      std::string w = Noun(rng);
      w[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(w[0])));
      t += w;
    }
  }
  return t;
}

const std::string& WordBank::Noun(util::Rng* rng) const {
  return rng->Choice(nouns_);
}
const std::string& WordBank::Verb(util::Rng* rng) const {
  return rng->Choice(verbs_);
}
const std::string& WordBank::Adjective(util::Rng* rng) const {
  return rng->Choice(adjectives_);
}
const std::string& WordBank::Genre(util::Rng* rng) const {
  return rng->Choice(genres_);
}

std::string WordBank::GenreSynonym(const std::string& genre) const {
  auto it = genre_synonyms_.find(genre);
  return it == genre_synonyms_.end() ? genre : it->second;
}

const std::string& WordBank::Country(util::Rng* rng) const {
  return rng->Choice(countries_);
}

std::string WordBank::Typo(const std::string& word, util::Rng* rng) {
  if (word.size() < 3) return word;
  std::string w = word;
  const size_t i =
      1 + static_cast<size_t>(rng->UniformInt(
              static_cast<uint64_t>(w.size() - 2)));
  switch (rng->UniformInt(3ULL)) {
    case 0:  // swap adjacent
      std::swap(w[i], w[i + 1]);
      break;
    case 1:  // drop
      w.erase(i, 1);
      break;
    default:  // duplicate
      w.insert(i, 1, w[i]);
      break;
  }
  return w;
}

std::vector<std::pair<std::string, std::string>> WordBank::MakeSynonymPairs(
    size_t n, util::Rng* rng) {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::string a = util::ToLower(FakeWord(rng));
    std::string b = util::ToLower(FakeWord(rng));
    if (a == b) b += "us";
    out.emplace_back(a, b);
    synonym_pairs_.emplace_back(a, b);
  }
  return out;
}

std::string WordBank::MakeAcronym(const std::string& phrase) {
  std::string acro;
  for (const auto& part : util::SplitWhitespace(phrase)) {
    acro += static_cast<char>(
        std::tolower(static_cast<unsigned char>(part[0])));
  }
  synonym_pairs_.emplace_back(util::ToLower(phrase), acro);
  return acro;
}

}  // namespace datagen
}  // namespace tdmatch
