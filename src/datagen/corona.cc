#include "datagen/corona.h"

#include <algorithm>

#include "datagen/generic_corpus.h"
#include "text/preprocess.h"
#include "util/string_util.h"

namespace tdmatch {
namespace datagen {

namespace {
const char* const kMetrics[] = {"new cases", "total cases", "new deaths",
                                "total deaths"};
}  // namespace

GeneratedScenario CoronaGenerator::Generate(const CoronaOptions& options) {
  util::Rng rng(options.seed);
  WordBank bank(options.seed);
  GeneratedScenario out;

  const size_t num_countries =
      std::min(options.num_countries, bank.Countries().size());
  const size_t num_months =
      std::min(options.num_months, bank.Months().size());
  const size_t days = options.days_per_month;

  // Daily case table: one row per (country, month, reporting day).
  corpus::Table table("corona",
                      {"country", "date", "new_cases", "total_cases",
                       "new_deaths", "total_deaths"});
  struct RowVals {
    size_t country, month, day;
    long long vals[4];
  };
  std::vector<RowVals> rows;
  for (size_t c = 0; c < num_countries; ++c) {
    for (size_t m = 0; m < num_months; ++m) {
      for (size_t d = 0; d < days; ++d) {
        // All metrics share one magnitude range so equal-width binning
        // (global, as in §II-C) resolves values across columns.
        long long new_cases = rng.UniformInt(100, 90000);
        long long total_cases = rng.UniformInt(100, 90000);
        long long new_deaths = rng.UniformInt(100, 90000);
        long long total_deaths = rng.UniformInt(100, 90000);
        rows.push_back(
            RowVals{c, m, d, {new_cases, total_cases, new_deaths,
                              total_deaths}});
        const std::string date = util::StrFormat(
            "%s %d", bank.Months()[m].c_str(),
            static_cast<int>(1 + d * (28 / days)));
        TDM_CHECK(table
                      .AddRow({bank.Countries()[c], date,
                               util::StrFormat("%lld", new_cases),
                               util::StrFormat("%lld", total_cases),
                               util::StrFormat("%lld", new_deaths),
                               util::StrFormat("%lld", total_deaths)})
                      .ok());
      }
    }
  }
  auto row_index = [&](size_t c, size_t m, size_t d) {
    return c * num_months * days + m * days + d;
  };

  // Claims cite country + month + metric + value; the day is never given,
  // so the (possibly approximate) value must pick among the month's rows.
  std::vector<corpus::TextDoc> claims;
  std::vector<std::vector<int32_t>> gold;
  const size_t num_claims = options.user_variant
                                ? options.num_user_claims
                                : options.num_generated_claims;
  for (size_t q = 0; q < num_claims; ++q) {
    const size_t ri = static_cast<size_t>(rng.UniformInt(rows.size()));
    const RowVals& rv = rows[ri];
    const size_t metric = static_cast<size_t>(rng.UniformInt(4ULL));
    long long value = rv.vals[metric];
    if (rng.Bernoulli(options.approx_value_rate)) {
      // Claims round to the nearest thousand ("about 45000"): never an
      // exact token match, but within one Freedman–Diaconis bucket.
      value = (value + 500) / 1000 * 1000;
    }
    std::string country = bank.Countries()[rv.country];
    std::string month = bank.Months()[rv.month];
    std::vector<int32_t> g = {static_cast<int32_t>(ri)};
    std::string text;

    const bool comparative = rng.Bernoulli(0.2);
    if (comparative) {
      // Comparative claims need two rows (same month and day) to verify.
      size_t other_c = static_cast<size_t>(rng.UniformInt(num_countries));
      if (other_c == rv.country) other_c = (other_c + 1) % num_countries;
      const size_t other_row = row_index(other_c, rv.month, rv.day);
      g.push_back(static_cast<int32_t>(other_row));
      const bool higher = rv.vals[metric] >= rows[other_row].vals[metric];
      text = util::StrFormat(
          "The number of %s in %s in %s was %s than in %s.",
          kMetrics[metric], country.c_str(), month.c_str(),
          higher ? "higher" : "lower",
          bank.Countries()[other_c].c_str());
    } else {
      text = util::StrFormat("The number of %s in %s in %s reached %lld.",
                             kMetrics[metric], country.c_str(), month.c_str(),
                             value);
    }

    if (options.user_variant) {
      // User style: typos and chatty filler.
      if (rng.Bernoulli(options.typo_rate)) {
        std::string typo = WordBank::Typo(country, &rng);
        size_t pos = text.find(country);
        if (pos != std::string::npos) text.replace(pos, country.size(), typo);
      }
      if (rng.Bernoulli(0.5)) {
        text = "i read somewhere that " + text;
      }
    }
    claims.push_back(corpus::TextDoc{util::StrFormat("claim_%zu", q), text});
    gold.push_back(std::move(g));
  }

  // ConceptNet-like resource: country/metric vocabulary relations.
  text::Preprocessor pp;
  auto normalizer = [pp](const std::string& s) {
    return util::Join(pp.Tokens(s), " ");
  };
  out.kb = std::make_shared<kb::SyntheticKB>(normalizer);
  for (size_t c = 0; c < num_countries; ++c) {
    out.kb->AddRelation(bank.Countries()[c], "country", "isA");
  }
  for (const char* m : kMetrics) {
    out.kb->AddRelation(m, "pandemic", "relatedTo");
    out.kb->AddRelation(m, "statistics", "relatedTo");
  }
  out.kb->AddRelation("cases", "infections", "synonym");
  out.kb->AddRelation("deaths", "fatalities", "synonym");
  for (size_t i = 0; i < 40; ++i) {
    out.kb->AddRelation(bank.Noun(&rng), bank.FakeWord(&rng), "relatedTo");
  }

  out.synonym_pairs = bank.SynonymPairs();
  out.generic_corpus = GenericCorpusGenerator::Generate(
      bank, GenericCorpusOptions{.seed = options.seed ^ 0x7272});

  out.scenario.name = options.user_variant ? "Corona-Usr" : "Corona-Gen";
  out.scenario.first = corpus::Corpus::FromTexts("claims", std::move(claims));
  out.scenario.second = corpus::Corpus::FromTable(std::move(table));
  out.scenario.gold = std::move(gold);
  return out;
}

}  // namespace datagen
}  // namespace tdmatch
