#ifndef TDMATCH_DATAGEN_WORD_BANK_H_
#define TDMATCH_DATAGEN_WORD_BANK_H_

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace tdmatch {
namespace datagen {

/// \brief Shared vocabulary machinery for the scenario generators.
///
/// Provides curated English word lists (generic filler, genres with
/// synonyms, countries, months) and a deterministic syllable-based proper-
/// name generator for people, movie titles and domain concepts. The synonym
/// and acronym tables generated here are the ground truth that the
/// "pre-trained" resources (PretrainedLexicon, SyntheticKB) are built from,
/// mirroring how WordNet/ConceptNet know real synonym pairs.
class WordBank {
 public:
  explicit WordBank(uint64_t seed = 1234);

  /// A capitalized pronounceable fake word of 2..3 syllables.
  std::string FakeWord(util::Rng* rng) const;

  /// "Forename Surname".
  std::string PersonName(util::Rng* rng) const;

  /// Abbreviates "Bruce Willis" to "B. Willis" (paper's name-variant case).
  static std::string AbbreviateName(const std::string& full_name);

  /// A 1..max_words title ("The <Fake> <Noun>"). `fake_word_rate` controls
  /// how often a title word is a fresh fake word instead of a generic noun
  /// (distinctive titles reduce accidental collisions with filler text).
  std::string Title(util::Rng* rng, size_t max_words = 3,
                    double fake_word_rate = 0.5) const;

  /// Uniform pick from the generic filler nouns/verbs/adjectives.
  const std::string& Noun(util::Rng* rng) const;
  const std::string& Verb(util::Rng* rng) const;
  const std::string& Adjective(util::Rng* rng) const;

  /// Movie genres; Synonym(genre) is a colloquial variant ("comedy" →
  /// "funny"), as reviews rarely use the canonical label.
  const std::string& Genre(util::Rng* rng) const;
  std::string GenreSynonym(const std::string& genre) const;

  const std::string& Country(util::Rng* rng) const;
  const std::vector<std::string>& Countries() const { return countries_; }
  const std::vector<std::string>& Months() const { return months_; }
  const std::vector<std::string>& Genres() const { return genres_; }

  /// Injects a random typo (swap/drop/duplicate one letter).
  static std::string Typo(const std::string& word, util::Rng* rng);

  /// Creates `n` domain term pairs (term, synonym) of fresh fake words and
  /// records them; used by the Audit and Claims generators.
  std::vector<std::pair<std::string, std::string>> MakeSynonymPairs(
      size_t n, util::Rng* rng);

  /// Creates an acronym for a multi-word phrase ("plan do check act" →
  /// "pdca") and records the pair.
  std::string MakeAcronym(const std::string& phrase);

  /// All recorded synonym pairs (curated genre pairs + generated ones +
  /// acronyms); feeds γ calibration and the generic corpus.
  const std::vector<std::pair<std::string, std::string>>& SynonymPairs()
      const {
    return synonym_pairs_;
  }

 private:
  std::vector<std::string> nouns_;
  std::vector<std::string> verbs_;
  std::vector<std::string> adjectives_;
  std::vector<std::string> genres_;
  std::unordered_map<std::string, std::string> genre_synonyms_;
  std::vector<std::string> countries_;
  std::vector<std::string> months_;
  std::vector<std::string> syllables_;
  std::vector<std::pair<std::string, std::string>> synonym_pairs_;
};

}  // namespace datagen
}  // namespace tdmatch

#endif  // TDMATCH_DATAGEN_WORD_BANK_H_
