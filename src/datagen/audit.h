#ifndef TDMATCH_DATAGEN_AUDIT_H_
#define TDMATCH_DATAGEN_AUDIT_H_

#include "datagen/generated.h"

namespace tdmatch {
namespace datagen {

/// Options for the Audit-like text-to-structured-text scenario (Table III).
struct AuditOptions {
  /// Taxonomy size (paper: 747 concepts, path lengths 2–5, average 4).
  size_t num_concepts = 160;
  size_t num_roots = 6;
  size_t max_depth = 5;
  /// Documents to match (paper: 1622 docs, 1–17 sentences, 3 on average).
  size_t num_documents = 320;
  /// Distribution of gold concepts per document (paper: 40% one concept,
  /// 10% two, rest 3..27 with average 4).
  double one_concept_rate = 0.4;
  double two_concept_rate = 0.1;
  size_t max_concepts_per_doc = 12;
  /// Probability a concept mention uses its domain synonym or acronym
  /// instead of the label ("PDCA" for "Plan Do Check Act").
  double synonym_mention_rate = 0.35;
  size_t num_domain_synonyms = 30;
  uint64_t seed = 13;
};

/// \brief Generates the auditing scenario: a concept taxonomy with
/// domain-specific vocabulary (fresh fake words + generic words reused with
/// domain meaning) and documents produced from 1..k concepts. First corpus
/// = documents, second = taxonomy. Domain synonyms/acronyms live only in
/// the ConceptNet-like KB — deliberately *not* in the generic pre-training
/// corpus, reproducing the paper's finding that pre-trained resources do
/// not help this domain.
class AuditGenerator {
 public:
  static GeneratedScenario Generate(const AuditOptions& options = {});
};

}  // namespace datagen
}  // namespace tdmatch

#endif  // TDMATCH_DATAGEN_AUDIT_H_
