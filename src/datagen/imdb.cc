#include "datagen/imdb.h"

#include "datagen/generic_corpus.h"
#include "text/preprocess.h"
#include "util/string_util.h"

namespace tdmatch {
namespace datagen {

namespace {

struct Movie {
  std::string title;
  std::string director;
  std::string actor1;
  std::string actor2;
  std::string genre;
  std::string year;
  std::string rating;
  std::string runtime;
  std::string country;
  std::string language;
  std::string certificate;
  std::string votes;
  std::string studio;
};

std::string LastName(const std::string& full) {
  auto parts = util::SplitWhitespace(full);
  return parts.empty() ? full : parts.back();
}

const char* const kLanguages[] = {"English", "French",  "Italian",
                                  "Spanish", "Japanese", "German"};
const char* const kCertificates[] = {"G", "PG", "PG-13", "R"};

}  // namespace

GeneratedScenario ImdbGenerator::Generate(const ImdbOptions& options) {
  util::Rng rng(options.seed);
  WordBank bank(options.seed);
  GeneratedScenario out;

  // Name pools sized so surnames collide across movies — the paper's
  // ambiguity challenge ("an actor named Willis appears in different
  // paragraphs and tuples, but only one tuple is the correct match").
  std::vector<std::string> forenames, surnames;
  for (int i = 0; i < 14; ++i) forenames.push_back(bank.FakeWord(&rng));
  for (int i = 0; i < 30; ++i) surnames.push_back(bank.FakeWord(&rng));
  auto person = [&]() {
    return rng.Choice(forenames) + " " + rng.Choice(surnames);
  };

  const size_t total_movies =
      options.num_reviewed_movies + options.num_distractor_movies;
  std::vector<Movie> movies(total_movies);
  for (size_t i = 0; i < total_movies; ++i) {
    Movie& m = movies[i];
    m.title = bank.Title(&rng, 3, /*fake_word_rate=*/0.85);
    m.director = person();
    m.actor1 = person();
    m.actor2 = person();
    m.genre = bank.Genre(&rng);
    m.year = util::StrFormat("%d", static_cast<int>(rng.UniformInt(1950, 2021)));
    m.rating = util::StrFormat("%.1f", rng.Uniform(3.0, 9.9));
    m.runtime = util::StrFormat("%d", static_cast<int>(rng.UniformInt(80, 200)));
    m.country = bank.Country(&rng);
    m.language = kLanguages[rng.UniformInt(
        static_cast<uint64_t>(std::size(kLanguages)))];
    m.certificate = kCertificates[rng.UniformInt(
        static_cast<uint64_t>(std::size(kCertificates)))];
    m.votes =
        util::StrFormat("%d", static_cast<int>(rng.UniformInt(1000, 999999)));
    m.studio = bank.FakeWord(&rng);
  }
  // Shared actors across some movies (extra ambiguity on full names).
  for (size_t i = 1; i < total_movies; ++i) {
    if (rng.Bernoulli(options.shared_actor_rate)) {
      movies[i].actor2 =
          movies[static_cast<size_t>(rng.UniformInt(i))].actor1;
    }
  }

  // Table corpus (13 attributes with title).
  corpus::Table table(
      "imdb", {"title", "director", "actor1", "actor2", "genre", "year",
               "rating", "runtime", "country", "language", "certificate",
               "votes", "studio"});
  for (const Movie& m : movies) {
    TDM_CHECK(table
                  .AddRow({m.title, m.director, m.actor1, m.actor2, m.genre,
                           m.year, m.rating, m.runtime, m.country, m.language,
                           m.certificate, m.votes, m.studio})
                  .ok());
  }
  if (!options.with_title) {
    auto dropped = table.DropColumns({"title"});
    TDM_CHECK(dropped.ok());
    table = std::move(dropped).ValueOrDie();
  }

  // Reviews for the first num_reviewed_movies movies. Mentions are noisy on
  // purpose: surnames only (ambiguous across the pool), colloquial genre
  // synonyms that never match the table label, partial titles, occasional
  // misleading full-name mentions of other movies' actors.
  std::vector<corpus::TextDoc> reviews;
  std::vector<std::vector<int32_t>> gold;
  for (size_t mi = 0; mi < options.num_reviewed_movies; ++mi) {
    const Movie& m = movies[mi];
    for (size_t r = 0; r < options.reviews_per_movie; ++r) {
      const size_t nsent =
          options.sentences_per_review_min +
          static_cast<size_t>(rng.UniformInt(static_cast<uint64_t>(
              options.sentences_per_review_max -
              options.sentences_per_review_min + 1)));
      std::vector<std::string> sentences;
      const std::string genre_mention =
          rng.Bernoulli(options.genre_synonym_rate)
              ? bank.GenreSynonym(m.genre)
              : m.genre;
      // Actor mention: abbreviated ("B. Willis") or surname only — never
      // the exact table value.
      const std::string actor_mention =
          rng.Bernoulli(options.abbrev_rate)
              ? WordBank::AbbreviateName(m.actor1)
              : LastName(m.actor1);
      sentences.push_back(util::StrFormat(
          "%s directed this %s %s about a %s and a %s.",
          LastName(m.director).c_str(), bank.Adjective(&rng).c_str(),
          genre_mention.c_str(), bank.Noun(&rng).c_str(),
          bank.Noun(&rng).c_str()));
      sentences.push_back(util::StrFormat(
          "%s delivers a %s performance as the %s.", actor_mention.c_str(),
          bank.Adjective(&rng).c_str(), bank.Noun(&rng).c_str()));
      if (rng.Bernoulli(options.second_actor_rate)) {
        sentences.push_back(util::StrFormat(
            "%s is equally %s in a supporting role.",
            LastName(m.actor2).c_str(), bank.Adjective(&rng).c_str()));
      }
      // Title mentions appear regardless of the table variant: in NT they
      // are pure noise, which is exactly why NT is harder.
      if (rng.Bernoulli(options.title_mention_rate)) {
        auto words = util::SplitWhitespace(m.title);
        std::string partial = words.size() >= 2 && rng.Bernoulli(0.5)
                                  ? words[0] + " " + words[1]
                                  : rng.Choice(words);
        sentences.push_back(util::StrFormat(
            "The %s of %s is simply %s.", bank.Noun(&rng).c_str(),
            partial.c_str(), bank.Adjective(&rng).c_str()));
      }
      if (rng.Bernoulli(options.year_mention_rate)) {
        sentences.push_back(util::StrFormat(
            "Released in %s it still feels %s today.", m.year.c_str(),
            bank.Adjective(&rng).c_str()));
      }
      if (rng.Bernoulli(options.certificate_mention_rate)) {
        sentences.push_back(util::StrFormat(
            "Despite the %s certificate it never feels %s.",
            m.certificate.c_str(), bank.Adjective(&rng).c_str()));
      }
      if (rng.Bernoulli(options.distractor_mention_rate)) {
        // Misleading high-signal mention: the FULL name of another movie's
        // lead, a strong exact-match pull toward the wrong tuple.
        const Movie& other =
            movies[static_cast<size_t>(rng.UniformInt(total_movies))];
        sentences.push_back(util::StrFormat(
            "Not as %s as the earlier work of %s in %s though.",
            bank.Adjective(&rng).c_str(), other.actor1.c_str(),
            util::SplitWhitespace(other.title)[0].c_str()));
      }
      while (sentences.size() < nsent) {
        sentences.push_back(util::StrFormat(
            "I watched it with a %s and we could not stop talking about "
            "the %s %s.",
            bank.Noun(&rng).c_str(), bank.Adjective(&rng).c_str(),
            bank.Noun(&rng).c_str()));
      }
      rng.Shuffle(&sentences);
      reviews.push_back(corpus::TextDoc{
          util::StrFormat("review_%zu_%zu", mi, r),
          util::Join(sentences, " ")});
      gold.push_back({static_cast<int32_t>(mi)});
    }
  }

  // DBpedia-like KB over the same universe + noise. The style() edges link
  // directors to colloquial genre words, bridging review vocabulary to
  // table vocabulary (the paper's Tarantino/Comedy example).
  text::Preprocessor pp;
  auto normalizer = [pp](const std::string& s) {
    return util::Join(pp.Tokens(s), " ");
  };
  out.kb = std::make_shared<kb::SyntheticKB>(normalizer);
  for (const Movie& m : movies) {
    out.kb->AddRelation(m.actor1, m.title, "starringOf");
    out.kb->AddRelation(m.actor2, m.title, "starringOf");
    out.kb->AddRelation(m.director, m.title, "directorOf");
    out.kb->AddRelation(m.director, m.genre, "style");
    out.kb->AddRelation(m.director, bank.GenreSynonym(m.genre), "style");
    out.kb->AddRelation(bank.GenreSynonym(m.genre), m.genre, "relatedTo");
    out.kb->AddRelation(m.director, m.country, "bornIn");
    // Sink-prone distractors (spouse example from the paper).
    out.kb->AddRelation(m.director, bank.PersonName(&rng), "spouse");
    for (size_t n = 0; n < options.kb_noise_per_entity; ++n) {
      out.kb->AddRelation(m.director, bank.FakeWord(&rng), "wikiPageLink");
      out.kb->AddRelation(m.actor1, bank.FakeWord(&rng), "wikiPageLink");
    }
  }

  out.synonym_pairs = bank.SynonymPairs();
  out.generic_corpus = GenericCorpusGenerator::Generate(
      bank, GenericCorpusOptions{.seed = options.seed ^ 0x5151});

  out.scenario.name = options.with_title ? "IMDb-WT" : "IMDb-NT";
  out.scenario.first = corpus::Corpus::FromTexts("reviews", std::move(reviews));
  out.scenario.second = corpus::Corpus::FromTable(std::move(table));
  out.scenario.gold = std::move(gold);
  return out;
}

}  // namespace datagen
}  // namespace tdmatch
