#include "datagen/claims.h"

#include <unordered_map>

#include "datagen/generic_corpus.h"
#include "text/preprocess.h"
#include "util/string_util.h"

namespace tdmatch {
namespace datagen {

ClaimsOptions ClaimsGenerator::SnopesPreset() {
  ClaimsOptions o;
  o.name = "Snopes";
  o.num_facts = 1100;
  o.num_queries = 120;
  o.synonym_swap_rate = 0.55;
  o.token_drop_rate = 0.3;
  o.seed = 17;
  return o;
}

ClaimsOptions ClaimsGenerator::PolitifactPreset() {
  ClaimsOptions o;
  o.name = "Politifact";
  o.num_facts = 1700;
  o.num_queries = 120;
  o.num_topics = 20;  // denser topics: more confusable candidates
  o.synonym_swap_rate = 0.6;
  o.token_drop_rate = 0.35;
  o.filler_rate = 0.6;
  o.seed = 19;
  return o;
}

GeneratedScenario ClaimsGenerator::Generate(const ClaimsOptions& options) {
  util::Rng rng(options.seed);
  WordBank bank(options.seed);
  GeneratedScenario out;

  auto syn_pairs = bank.MakeSynonymPairs(options.num_synonym_pairs, &rng);
  std::unordered_map<std::string, std::string> syn_of;
  for (const auto& [a, b] : syn_pairs) {
    syn_of[a] = b;
    syn_of[b] = a;
  }

  // Topical clusters: each topic owns a few people and a small content
  // vocabulary, so its facts are highly confusable with each other.
  struct Topic {
    std::vector<std::string> people;
    std::vector<std::string> words;
    std::string country;
  };
  std::vector<Topic> topics(options.num_topics);
  size_t syn_cursor = 0;
  for (auto& topic : topics) {
    for (size_t p = 0; p < options.people_per_topic; ++p) {
      topic.people.push_back(bank.PersonName(&rng));
    }
    for (size_t w = 0; w < options.words_per_topic; ++w) {
      // Half the topic vocabulary comes from the synonym list so
      // paraphrases can swap those words.
      if (w % 2 == 0 && !syn_pairs.empty()) {
        topic.words.push_back(
            syn_pairs[syn_cursor++ % syn_pairs.size()].first);
      } else {
        topic.words.push_back(bank.Noun(&rng));
      }
    }
    topic.country = bank.Country(&rng);
  }

  const char* const kYears[] = {"2018", "2019", "2020", "2021"};

  std::vector<corpus::TextDoc> facts;
  std::vector<std::vector<std::string>> fact_tokens;  // for paraphrasing
  for (size_t f = 0; f < options.num_facts; ++f) {
    const Topic& topic = topics[f % topics.size()];
    std::string text = util::StrFormat(
        "%s said that the %s %s of %s will %s the %s in %s in %s.",
        rng.Choice(topic.people).c_str(), bank.Adjective(&rng).c_str(),
        rng.Choice(topic.words).c_str(), rng.Choice(topic.words).c_str(),
        bank.Verb(&rng).c_str(), rng.Choice(topic.words).c_str(),
        topic.country.c_str(),
        kYears[rng.UniformInt(static_cast<uint64_t>(std::size(kYears)))]);
    facts.push_back(corpus::TextDoc{util::StrFormat("fact_%zu", f), text});
    fact_tokens.push_back(util::SplitWhitespace(text));
  }

  // Queries: paraphrases of a random subset of facts.
  std::vector<corpus::TextDoc> queries;
  std::vector<std::vector<int32_t>> gold;
  std::vector<size_t> fact_idx =
      rng.SampleIndices(options.num_facts, options.num_queries);
  for (size_t qi = 0; qi < fact_idx.size(); ++qi) {
    const size_t f = fact_idx[qi];
    std::vector<std::string> toks;
    for (const auto& raw : fact_tokens[f]) {
      // Strip trailing punctuation for manipulation.
      std::string tok = raw;
      if (!tok.empty() && (tok.back() == '.' || tok.back() == ',')) {
        tok.pop_back();
      }
      if (rng.Bernoulli(options.token_drop_rate)) continue;
      auto it = syn_of.find(util::ToLower(tok));
      if (it != syn_of.end() && rng.Bernoulli(options.synonym_swap_rate)) {
        toks.push_back(it->second);
      } else {
        toks.push_back(tok);
      }
    }
    std::string text = util::Join(toks, " ");
    if (rng.Bernoulli(options.filler_rate)) {
      text = "people claim that " + text;
    }
    queries.push_back(
        corpus::TextDoc{util::StrFormat("query_%zu", qi), text});
    gold.push_back({static_cast<int32_t>(f)});
  }

  // ConceptNet-like KB: the synonym vocabulary plus noise.
  text::Preprocessor pp;
  auto normalizer = [pp](const std::string& s) {
    return util::Join(pp.Tokens(s), " ");
  };
  out.kb = std::make_shared<kb::SyntheticKB>(normalizer);
  for (const auto& [a, b] : syn_pairs) out.kb->AddRelation(a, b, "synonym");
  for (size_t i = 0; i < 50; ++i) {
    out.kb->AddRelation(bank.Noun(&rng), bank.Noun(&rng), "relatedTo");
    out.kb->AddRelation(bank.Noun(&rng), bank.FakeWord(&rng), "relatedTo");
  }

  out.synonym_pairs = bank.SynonymPairs();
  out.generic_corpus = GenericCorpusGenerator::Generate(
      bank, GenericCorpusOptions{.seed = options.seed ^ 0xabab});

  out.scenario.name = options.name;
  out.scenario.first =
      corpus::Corpus::FromTexts("input_claims", std::move(queries));
  out.scenario.second =
      corpus::Corpus::FromTexts("verified_claims", std::move(facts));
  out.scenario.gold = std::move(gold);
  return out;
}

}  // namespace datagen
}  // namespace tdmatch
