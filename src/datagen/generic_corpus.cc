#include "datagen/generic_corpus.h"

#include "util/string_util.h"

namespace tdmatch {
namespace datagen {

std::vector<std::vector<std::string>> GenericCorpusGenerator::Generate(
    const WordBank& bank, const GenericCorpusOptions& options) {
  util::Rng rng(options.seed);
  std::vector<std::vector<std::string>> out;
  out.reserve(options.num_sentences);
  const auto& syns = bank.SynonymPairs();

  for (size_t s = 0; s < options.num_sentences; ++s) {
    const size_t len =
        options.min_len +
        static_cast<size_t>(rng.UniformInt(
            static_cast<uint64_t>(options.max_len - options.min_len + 1)));
    std::vector<std::string> sent;
    sent.reserve(len + 2);

    // Optionally anchor the sentence on a synonym pair: both surface forms
    // appear in the same local context.
    const bool syn_sentence =
        !syns.empty() && rng.Bernoulli(options.synonym_sentence_rate);
    size_t syn_idx = 0;
    if (syn_sentence) {
      syn_idx = static_cast<size_t>(rng.UniformInt(syns.size()));
    }

    for (size_t i = 0; i < len; ++i) {
      switch (rng.UniformInt(4ULL)) {
        case 0:
          sent.push_back(bank.Noun(&rng));
          break;
        case 1:
          sent.push_back(bank.Verb(&rng));
          break;
        case 2:
          sent.push_back(bank.Adjective(&rng));
          break;
        default:
          sent.push_back(util::ToLower(bank.Genre(&rng)));
          break;
      }
    }
    if (syn_sentence) {
      // Insert both members near each other (shared context window).
      const auto& [a, b] = syns[syn_idx];
      const size_t pos = static_cast<size_t>(
          rng.UniformInt(static_cast<uint64_t>(sent.size())));
      sent.insert(sent.begin() + static_cast<std::ptrdiff_t>(pos), a);
      const size_t pos2 = std::min(sent.size(), pos + 2);
      sent.insert(sent.begin() + static_cast<std::ptrdiff_t>(pos2), b);
    }
    out.push_back(std::move(sent));
  }
  return out;
}

}  // namespace datagen
}  // namespace tdmatch
