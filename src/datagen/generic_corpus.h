#ifndef TDMATCH_DATAGEN_GENERIC_CORPUS_H_
#define TDMATCH_DATAGEN_GENERIC_CORPUS_H_

#include <string>
#include <vector>

#include "datagen/word_bank.h"

namespace tdmatch {
namespace datagen {

/// Options for the generic ("Wikipedia-like") pre-training corpus.
struct GenericCorpusOptions {
  size_t num_sentences = 4000;
  size_t min_len = 5;
  size_t max_len = 14;
  /// How often a sentence pairs a synonym couple, letting the lexicon learn
  /// that they are interchangeable.
  double synonym_sentence_rate = 0.3;
  uint64_t seed = 99;
};

/// \brief Generates the corpus the PretrainedLexicon is trained on — the
/// substitute for Wikipedia2Vec's Wikipedia dump (see DESIGN.md).
///
/// Sentences are generic filler with two key properties: (i) synonym pairs
/// recorded in the WordBank co-occur in interchangeable contexts, so their
/// trained vectors end up close (enabling the γ-merge); (ii) the corpus
/// contains *none* of the scenario-specific entities, so domain terms stay
/// out-of-vocabulary — the paper's "pre-trained resources fail on domain
/// specific terms" phenomenon.
class GenericCorpusGenerator {
 public:
  static std::vector<std::vector<std::string>> Generate(
      const WordBank& bank, const GenericCorpusOptions& options = {});
};

}  // namespace datagen
}  // namespace tdmatch

#endif  // TDMATCH_DATAGEN_GENERIC_CORPUS_H_
