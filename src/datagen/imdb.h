#ifndef TDMATCH_DATAGEN_IMDB_H_
#define TDMATCH_DATAGEN_IMDB_H_

#include "datagen/generated.h"

namespace tdmatch {
namespace datagen {

/// Options for the IMDb-like text-to-data scenario (Table I).
struct ImdbOptions {
  /// Movies with reviews (each gets `reviews_per_movie` reviews).
  size_t num_reviewed_movies = 60;
  /// Additional tuples without reviews (the paper matches 2k reviews
  /// against 50k tuples — most tuples are never a correct answer).
  size_t num_distractor_movies = 90;
  size_t reviews_per_movie = 2;
  size_t sentences_per_review_min = 3;
  size_t sentences_per_review_max = 8;
  /// Probability a review names the genre by its colloquial synonym
  /// ("funny" for comedy) instead of the table label.
  double genre_synonym_rate = 0.6;
  /// Probability an actor mention is abbreviated ("B. Willis").
  double abbrev_rate = 0.5;
  /// Probability a review sentence name-drops an actor of another movie
  /// (the paper's ambiguity challenge).
  double distractor_mention_rate = 0.45;
  /// Probability the review mentions the second actor's surname too.
  double second_actor_rate = 0.5;
  /// Probability of a partial title mention / exact year / certificate.
  double title_mention_rate = 0.6;
  double year_mention_rate = 0.45;
  double certificate_mention_rate = 0.2;
  /// Fraction of movies that share an actor with another movie.
  double shared_actor_rate = 0.2;
  /// Distractor KB relations per entity (hub noise; "800 relations for
  /// Tarantino, few useful").
  size_t kb_noise_per_entity = 8;
  /// Drop the title column ("NT" variant of Table I).
  bool with_title = true;
  uint64_t seed = 7;
};

/// \brief Generates the IMDb scenario: a movie relation (13 attributes with
/// title) + reviews mentioning noisy subsets of tuple values; first corpus
/// = reviews (text), second = the table. A DBpedia-like KB over the same
/// entity universe supports expansion.
class ImdbGenerator {
 public:
  static GeneratedScenario Generate(const ImdbOptions& options = {});
};

}  // namespace datagen
}  // namespace tdmatch

#endif  // TDMATCH_DATAGEN_IMDB_H_
