// Text-to-text (the Tables IV/V workload): ranks verified claims for each
// input claim, comparing TDmatch against the pre-trained sentence-encoder
// baseline and their Fig. 10 combination.
//
//   build/examples/claim_matching

#include <cstdio>

#include "baselines/sbe.h"
#include "core/experiment.h"
#include "core/tdmatch.h"
#include "datagen/claims.h"
#include "match/combine.h"
#include "match/top_k.h"

using namespace tdmatch;  // NOLINT: example brevity

int main() {
  auto opts = datagen::ClaimsGenerator::SnopesPreset();
  opts.num_facts = 600;
  opts.num_queries = 80;
  auto data = datagen::ClaimsGenerator::Generate(opts);
  const corpus::Scenario& s = data.scenario;
  std::printf("scenario %s: %zu claims vs %zu facts\n", s.name.c_str(),
              s.first.NumDocs(), s.second.NumDocs());

  baselines::HashSentenceEncoder sbe;
  auto sbe_run = core::Experiment::Run(&sbe, s);
  TDM_CHECK(sbe_run.ok()) << sbe_run.status().ToString();

  core::TDmatchOptions options = core::TDmatchOptions::TextTaskDefaults();
  core::TDmatchMethod wrw("W-RW", options);
  auto wrw_run = core::Experiment::Run(&wrw, s);
  TDM_CHECK(wrw_run.ok()) << wrw_run.status().ToString();

  // Fig. 10: average the two methods' normalized scores per query.
  core::MethodRun combined;
  combined.rankings.resize(s.first.NumDocs());
  combined.scores.resize(s.first.NumDocs());
  for (size_t q = 0; q < s.first.NumDocs(); ++q) {
    combined.scores[q] = match::ScoreCombiner::AverageNormalized(
        wrw_run->scores[q], sbe_run->scores[q]);
    combined.rankings[q] = match::TopK::FullRanking(combined.scores[q]);
  }

  std::printf("\n%s\n", core::Experiment::Header().c_str());
  std::printf("%s\n",
              core::Experiment::FormatRow(
                  core::Experiment::Report("S-BE", *sbe_run, s))
                  .c_str());
  std::printf("%s\n",
              core::Experiment::FormatRow(
                  core::Experiment::Report("W-RW", *wrw_run, s))
                  .c_str());
  std::printf("%s\n",
              core::Experiment::FormatRow(
                  core::Experiment::Report("W-RW&S-BE", combined, s))
                  .c_str());
  return 0;
}
