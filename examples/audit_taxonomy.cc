// Text-to-structured-text (the Example 2 / Table III workload): matches
// audit documents to taxonomy concepts and reports the paper's Exact and
// Node scores at several K.
//
//   build/examples/audit_taxonomy

#include <cstdio>

#include "core/experiment.h"
#include "core/tdmatch.h"
#include "datagen/audit.h"
#include "eval/taxonomy_metrics.h"

using namespace tdmatch;  // NOLINT: example brevity

int main() {
  datagen::AuditOptions gen;
  gen.num_concepts = 120;
  gen.num_documents = 200;
  auto data = datagen::AuditGenerator::Generate(gen);
  const corpus::Scenario& s = data.scenario;
  const corpus::Taxonomy& tax = *s.second.taxonomy();
  std::printf("scenario %s: %zu documents vs %zu concepts\n", s.name.c_str(),
              s.first.NumDocs(), s.second.NumDocs());

  // Text-oriented task: CBOW with a wide window (§V).
  core::TDmatchOptions options = core::TDmatchOptions::TextTaskDefaults();
  options.expand = true;  // ConceptNet-like expansion helps with acronyms
  core::TDmatchMethod method("W-RW-EX", options, data.kb.get());
  auto run = core::Experiment::Run(&method, s);
  TDM_CHECK(run.ok()) << run.status().ToString();

  std::printf("\n%-4s  %-23s  %-23s\n", "K", "Exact P/R/F", "Node P/R/F");
  for (size_t k : {1, 3, 5, 10}) {
    auto exact = eval::TaxonomyMetrics::ExactScores(tax, run->rankings,
                                                    s.gold, k);
    auto node =
        eval::TaxonomyMetrics::NodeScores(tax, run->rankings, s.gold, k);
    std::printf("%-4zu  %.3f %.3f %.3f        %.3f %.3f %.3f\n", k,
                exact.precision, exact.recall, exact.f1, node.precision,
                node.recall, node.f1);
  }
  return 0;
}
