// Quickstart: match three text snippets against a tiny movie table with the
// TDmatch pipeline — the minimal end-to-end use of the public API.
//
//   build/examples/quickstart
//
// Steps shown: build corpora → configure TDmatch → run → inspect top-1.

#include <cstdio>

#include "core/tdmatch.h"
#include "match/top_k.h"

using namespace tdmatch;  // NOLINT: example brevity

int main() {
  // 1. A relational corpus: the movie table from Fig. 1 of the paper.
  corpus::Table movies("movies", {"title", "director", "actor", "genre",
                                  "certificate"});
  TDM_CHECK(movies
                .AddRow({"The Sixth Sense", "Shyamalan", "Bruce Willis",
                         "Thriller", "PG"})
                .ok());
  TDM_CHECK(movies
                .AddRow({"Pulp Fiction", "Tarantino", "Bruce Willis", "Drama",
                         "R"})
                .ok());
  TDM_CHECK(movies
                .AddRow({"Moonrise Kingdom", "Anderson", "Bill Murray",
                         "Comedy", "PG-13"})
                .ok());

  // 2. A text corpus: review paragraphs without identifiers.
  std::vector<corpus::TextDoc> reviews = {
      {"p1", "A dark comedy by Tarantino where Willis shines."},
      {"p2", "Shyamalan directs this quiet thriller about a kid."},
      {"p3", "Murray leads a gentle island adventure for the family."},
  };

  corpus::Corpus first = corpus::Corpus::FromTexts("reviews", reviews);
  corpus::Corpus second = corpus::Corpus::FromTable(movies);

  // 3. Configure the pipeline. Tiny data: generous walks are still instant.
  core::TDmatchOptions options;
  options.walks.num_walks = 40;
  options.walks.walk_length = 12;
  options.w2v.epochs = 6;

  core::TDmatch engine(options);
  auto result = engine.Run(first, second);
  TDM_CHECK(result.ok()) << result.status().ToString();

  // 4. Inspect the matches.
  std::printf("graph: %zu nodes, %zu edges\n\n", result->original.nodes,
              result->original.edges);
  for (size_t q = 0; q < reviews.size(); ++q) {
    auto top = match::TopK::Select(result->scores[q], 1);
    std::printf("%s -> %s (score %.3f)\n      \"%s\"\n", reviews[q].id.c_str(),
                movies.TupleText(static_cast<size_t>(top[0].index)).c_str(),
                top[0].score, reviews[q].text.c_str());
  }
  return 0;
}
