// Bring-your-own-data workflow: write a table and a text corpus to disk,
// load them back through corpus::Loader, inspect the graph with
// graph::ComputeStatistics, prune candidates with match::TokenBlocker, run
// TDmatch, and persist the document embeddings with embed::EmbeddingIo.
//
//   build/examples/custom_csv

#include <cstdio>

#include "corpus/loader.h"
#include "core/tdmatch.h"
#include "embed/io.h"
#include "graph/builder.h"
#include "graph/stats.h"
#include "match/blocking.h"
#include "match/top_k.h"
#include "util/csv.h"

using namespace tdmatch;  // NOLINT: example brevity

int main() {
  const std::string dir = "/tmp";
  const std::string table_path = dir + "/tdmatch_products.csv";
  const std::string texts_path = dir + "/tdmatch_reviews.txt";
  const std::string vectors_path = dir + "/tdmatch_vectors.txt";

  // 1. Create input files (in a real workflow these already exist).
  TDM_CHECK(util::Csv::WriteFile(
                table_path,
                {{"name", "brand", "category"},
                 {"Trail Runner 7", "Vantor", "running shoes"},
                 {"Peak Jacket", "Nordlund", "outdoor clothing"},
                 {"City Cruiser", "Vantor", "commuter bike"}})
                .ok());
  {
    std::vector<std::vector<std::string>> lines = {
        {"the vantor trail runner feels light on long runs"},
        {"nordlund makes the warmest jacket for winter hikes"},
        {"my new cruiser bike from vantor handles city streets well"}};
    std::string buffer;
    for (const auto& l : lines) buffer += l[0] + "\n";
    std::FILE* f = std::fopen(texts_path.c_str(), "w");
    TDM_CHECK(f != nullptr);
    std::fputs(buffer.c_str(), f);
    std::fclose(f);
  }

  // 2. Load them back.
  auto table = corpus::Loader::TableFromCsv(table_path, "products");
  TDM_CHECK(table.ok()) << table.status().ToString();
  auto reviews = corpus::Loader::TextsFromFile(texts_path, "reviews");
  TDM_CHECK(reviews.ok()) << reviews.status().ToString();
  corpus::Corpus products = corpus::Corpus::FromTable(*table);

  // 3. Inspect the joint graph before matching.
  graph::GraphBuilder builder{graph::BuilderOptions{}};
  auto g = builder.Build(*reviews, products);
  TDM_CHECK(g.ok());
  std::printf("--- graph ---\n%s\n\n",
              graph::FormatStatistics(graph::ComputeStatistics(*g)).c_str());

  // 4. Blocking preview: how many candidates would scoring skip?
  match::TokenBlocker blocker;
  blocker.Index(products);
  std::printf("average block fraction: %.2f\n\n",
              blocker.AverageBlockFraction(*reviews));

  // 5. Match.
  core::TDmatchOptions options;
  options.walks.num_walks = 40;
  options.walks.walk_length = 12;
  options.w2v.epochs = 6;
  core::TDmatch engine(options);
  auto result = engine.Run(*reviews, products);
  TDM_CHECK(result.ok()) << result.status().ToString();
  embed::EmbeddingTable doc_vectors;  // dim inferred from the first vector
  for (size_t q = 0; q < reviews->NumDocs(); ++q) {
    auto top = match::TopK::Select(result->scores[q], 1);
    std::printf("%s -> %s (%.3f)\n", reviews->DocId(q).c_str(),
                table->TupleText(static_cast<size_t>(top[0].index)).c_str(),
                top[0].score);
  }

  // 6. Persist and reload the per-document score vectors as embeddings.
  for (size_t q = 0; q < reviews->NumDocs(); ++q) {
    std::vector<float> v(result->scores[q].begin(), result->scores[q].end());
    doc_vectors.Put(reviews->DocId(q), std::move(v));
  }
  TDM_CHECK(embed::EmbeddingIo::Save(doc_vectors, vectors_path).ok());
  auto reloaded = embed::EmbeddingIo::Load(vectors_path);
  TDM_CHECK(reloaded.ok());
  std::printf("\nsaved %zu vectors to %s and reloaded %zu\n",
              doc_vectors.size(), vectors_path.c_str(), reloaded->size());

  std::remove(table_path.c_str());
  std::remove(texts_path.c_str());
  std::remove(vectors_path.c_str());
  return 0;
}
