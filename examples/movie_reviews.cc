// Text-to-data at scenario scale (the Example 1 / Table I workload):
// generates the synthetic IMDb scenario, runs TDmatch with and without
// graph expansion against the DBpedia-like KB, and reports ranking quality.
//
//   build/examples/movie_reviews

#include <cstdio>

#include "core/experiment.h"
#include "core/tdmatch.h"
#include "datagen/imdb.h"

using namespace tdmatch;  // NOLINT: example brevity

int main() {
  datagen::ImdbOptions gen;
  gen.num_reviewed_movies = 40;
  gen.num_distractor_movies = 60;
  auto data = datagen::ImdbGenerator::Generate(gen);
  const corpus::Scenario& s = data.scenario;
  std::printf("scenario %s: %zu reviews vs %zu tuples\n", s.name.c_str(),
              s.first.NumDocs(), s.second.NumDocs());

  core::TDmatchOptions options;  // text-to-data defaults: Skip-gram, window 3

  // Without expansion (W-RW).
  core::TDmatchMethod wrw("W-RW", options);
  auto run = core::Experiment::Run(&wrw, s);
  TDM_CHECK(run.ok()) << run.status().ToString();
  auto report = core::Experiment::Report("W-RW", *run, s);

  // With expansion (W-RW-EX): plug the scenario's KB into Alg. 2.
  core::TDmatchOptions ex_options = options;
  ex_options.expand = true;
  core::TDmatchMethod wrwex("W-RW-EX", ex_options, data.kb.get());
  auto ex_run = core::Experiment::Run(&wrwex, s);
  TDM_CHECK(ex_run.ok()) << ex_run.status().ToString();
  auto ex_report = core::Experiment::Report("W-RW-EX", *ex_run, s);

  std::printf("\n%s\n", core::Experiment::Header().c_str());
  std::printf("%s\n", core::Experiment::FormatRow(report).c_str());
  std::printf("%s\n", core::Experiment::FormatRow(ex_report).c_str());
  std::printf(
      "\nexpanded graph: %zu -> %zu nodes (KB: %s)\n",
      wrwex.last_result().original.nodes, wrwex.last_result().expanded.nodes,
      data.kb->name().c_str());
  return 0;
}
